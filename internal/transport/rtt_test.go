package transport

import (
	"testing"

	"flowpulse/internal/fabric"
	"flowpulse/internal/fault"
	"flowpulse/internal/sim"
	"flowpulse/internal/topology"
)

func TestRTTEstimatorConverges(t *testing.T) {
	var e rttEstimator
	if e.rto(5000, false) != 5000 {
		t.Fatal("uninitialized estimator must return the floor")
	}
	for i := 0; i < 100; i++ {
		e.observe(2000)
	}
	// Steady 2000ps RTT: srtt→2000, rttvar→small; rto stays at floor
	// when srtt+4var < floor.
	if got := e.rto(5000, false); got != 5000 {
		t.Fatalf("rto below floor not clamped: %d", got)
	}
	// Much larger observed RTTs push the rto above the floor.
	for i := 0; i < 100; i++ {
		e.observe(50000)
	}
	if got := e.rto(5000, false); got <= 5000 {
		t.Fatalf("rto did not rise above floor: %d", got)
	}
	if got := e.rto(5000, false); float64(got) < 50000 {
		t.Fatalf("rto %d below converged srtt", got)
	}
}

func TestRTTEstimatorTracksVariance(t *testing.T) {
	var e rttEstimator
	e.observe(1000)
	lowVar := e.rttvar
	// Oscillating samples inflate rttvar.
	for i := 0; i < 50; i++ {
		if i%2 == 0 {
			e.observe(500)
		} else {
			e.observe(4000)
		}
	}
	if e.rttvar <= lowVar {
		t.Fatalf("rttvar did not grow under oscillation: %v", e.rttvar)
	}
}

func TestFixedRTONoAdaptation(t *testing.T) {
	topo, err := topology.NewFatTree(topology.FatTreeConfig{Leaves: 2, Spines: 2})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	net := fabric.MustNew(fabric.Config{Topo: topo, Engine: eng, Seed: 1})
	stack := NewStack(net, Config{FixedRTO: true})
	delivered := false
	stack.Send(&Message{Src: 0, Dst: 1, Bytes: 256 << 10,
		OnDelivered: func(sim.Time, *Message) { delivered = true }})
	eng.Run()
	if !delivered {
		t.Fatal("fixed-RTO transport failed on a clean network")
	}
	// Estimators must be untouched.
	for i := range stack.rtts {
		if stack.rtts[i].valid {
			t.Fatal("FixedRTO fed the estimator")
		}
	}
}

func TestBackoffSpacesRetries(t *testing.T) {
	// Total black hole with backoff: retry k fires RTO<<min(k,6) after
	// the previous, so the Nth retry lands exponentially late.
	topo, err := topology.NewFatTree(topology.FatTreeConfig{Leaves: 2, Spines: 1})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	net := fabric.MustNew(fabric.Config{Topo: topo, Engine: eng, Seed: 2})
	stack := NewStack(net, Config{MaxRetries: 5})
	link := topo.TrunkLinks(topo.Spines()[0], topo.LeafOf(1))[0]
	net.InjectFault(link, fabric.DirBoth, fault.BlackHole{})

	var times []sim.Time
	DebugRetx = func(now sim.Time, _ uint64, _ int, _ int) { times = append(times, now) }
	defer func() { DebugRetx = nil }()

	stack.Send(&Message{Src: 0, Dst: 1, Bytes: 100})
	eng.Run()
	if len(times) != 5 {
		t.Fatalf("retries = %d, want 5", len(times))
	}
	for i := 2; i < len(times); i++ {
		gapPrev := times[i-1] - times[i-2]
		gap := times[i] - times[i-1]
		if gap < gapPrev*3/2 {
			t.Fatalf("retry gaps not growing: %v then %v", gapPrev, gap)
		}
	}
	if st := stack.Stats(); st.Abandoned != 1 {
		t.Fatalf("abandoned = %d, want 1", st.Abandoned)
	}
}

func TestDisableBackoffKeepsGapsFlat(t *testing.T) {
	topo, err := topology.NewFatTree(topology.FatTreeConfig{Leaves: 2, Spines: 1})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	net := fabric.MustNew(fabric.Config{Topo: topo, Engine: eng, Seed: 3})
	stack := NewStack(net, Config{MaxRetries: 4, DisableBackoff: true, FixedRTO: true})
	link := topo.TrunkLinks(topo.Spines()[0], topo.LeafOf(1))[0]
	net.InjectFault(link, fabric.DirBoth, fault.BlackHole{})

	var times []sim.Time
	DebugRetx = func(now sim.Time, _ uint64, _ int, _ int) { times = append(times, now) }
	defer func() { DebugRetx = nil }()

	stack.Send(&Message{Src: 0, Dst: 1, Bytes: 100})
	eng.Run()
	if len(times) != 4 {
		t.Fatalf("retries = %d, want 4", len(times))
	}
	first := times[1] - times[0]
	for i := 2; i < len(times); i++ {
		gap := times[i] - times[i-1]
		if gap != first {
			t.Fatalf("fixed RTO without backoff must keep gaps constant: %v vs %v", gap, first)
		}
	}
}
