package transport

// Tests for the migration-hardened loss-recovery profile (per-pair RTO
// backoff, timestamp-echo RTT sampling, tail-margin RTO) the resilience
// loop enables — see Config.PairBackoff and Config.TimestampRTT.

import (
	"testing"

	"flowpulse/internal/fabric"
	"flowpulse/internal/fault"
	"flowpulse/internal/sim"
	"flowpulse/internal/topology"
)

func TestTailMarginDoublesSmoothedTerm(t *testing.T) {
	var e rttEstimator
	if e.rto(5000, true) != 5000 {
		t.Fatal("uninitialized estimator must return the floor regardless of margin")
	}
	for i := 0; i < 200; i++ {
		e.observe(20000)
	}
	// Converged: srtt=20000, rttvar→~0. Without the margin the timer
	// sits right on the mean; with it, at twice the mean.
	plain, hard := e.rto(5000, false), e.rto(5000, true)
	if plain < 20000 || plain > 22000 {
		t.Fatalf("plain rto %d, want ~srtt 20000", plain)
	}
	if hard < 40000 || hard > 42000 {
		t.Fatalf("tail-margin rto %d, want ~2·srtt 40000", hard)
	}
}

// TestPairBackoffInheritedByNewMessages: the property that breaks the
// post-replan meltdown. A pair whose packets are timing out backs off
// as a pair, so a NEW message's first RTO starts from the backed-off
// timeout instead of the stale short one.
func TestPairBackoffInheritedByNewMessages(t *testing.T) {
	firstRetxGap := func(pairBackoff bool) sim.Duration {
		topo, err := topology.NewFatTree(topology.FatTreeConfig{Leaves: 2, Spines: 1})
		if err != nil {
			t.Fatal(err)
		}
		eng := sim.NewEngine()
		net := fabric.MustNew(fabric.Config{Topo: topo, Engine: eng, Seed: 7})
		stack := NewStack(net, Config{MaxRetries: 3, FixedRTO: true, PairBackoff: pairBackoff})
		link := topo.TrunkLinks(topo.Spines()[0], topo.LeafOf(1))[0]
		net.InjectFault(link, fabric.DirBoth, fault.BlackHole{})

		// Message 1 burns its retries into the black hole, backing the
		// pair off (when enabled). Message 2 starts fresh per-packet
		// state on the same pair.
		var msg2Sent, msg2FirstRetx sim.Time
		stack.Send(&Message{Src: 0, Dst: 1, Bytes: 100})
		eng.After(200*sim.Microsecond, func(now sim.Time) {
			msg2Sent = now
			DebugRetx = func(now sim.Time, _ uint64, _ int, _ int) {
				if msg2FirstRetx == 0 {
					msg2FirstRetx = now
				}
			}
			stack.Send(&Message{Src: 0, Dst: 1, Bytes: 100})
		})
		eng.Run()
		DebugRetx = nil
		if msg2FirstRetx == 0 {
			t.Fatal("message 2 never retransmitted into the black hole")
		}
		return msg2FirstRetx.Sub(msg2Sent)
	}

	plain, hardened := firstRetxGap(false), firstRetxGap(true)
	// MaxRetries=3 timeouts back the pair off to 3 → first RTO 8×.
	if hardened < 6*plain {
		t.Fatalf("pair backoff not inherited: first retx after %v hardened vs %v plain", hardened, plain)
	}
}

// TestTimestampEchoDefeatsKarnStarvation: with an RTO floor below the
// path's real round-trip time, every packet is retransmitted at least
// once, so Karn's rule discards every sample and the estimator never
// learns — the spurious-retransmission loop stays stable. The
// timestamp echo keeps sampling through the storm.
func TestTimestampEchoDefeatsKarnStarvation(t *testing.T) {
	run := func(timestamps bool) (Stats, rttEstimator) {
		topo, err := topology.NewFatTree(topology.FatTreeConfig{Leaves: 2, Spines: 1})
		if err != nil {
			t.Fatal(err)
		}
		eng := sim.NewEngine()
		net := fabric.MustNew(fabric.Config{Topo: topo, Engine: eng, Seed: 11})
		// 1 µs RTO floor: a 1 MiB message queues far more than 1 µs of
		// serialization at the NIC, so mid-message round trips dwarf
		// the timer. DisableBackoff keeps the per-packet escape hatch
		// shut — recovery must come from learning the RTT.
		stack := NewStack(net, Config{RTO: sim.Microsecond, DisableBackoff: true, TimestampRTT: timestamps})
		delivered := false
		stack.Send(&Message{Src: 0, Dst: 1, Bytes: 1 << 20,
			OnDelivered: func(sim.Time, *Message) { delivered = true }})
		eng.Run()
		if !delivered {
			t.Fatal("message not delivered")
		}
		return stack.Stats(), stack.rtts[0*stack.nHosts+1]
	}

	karn, karnEst := run(false)
	echo, echoEst := run(true)
	if karn.SpuriousRetransmits == 0 {
		t.Fatal("scenario not stressful enough: no spurious retransmissions under Karn sampling")
	}
	if echo.SpuriousRetransmits*2 > karn.SpuriousRetransmits {
		t.Fatalf("timestamp echo did not tame the storm: %d spurious vs %d under Karn",
			echo.SpuriousRetransmits, karn.SpuriousRetransmits)
	}
	if !echoEst.valid {
		t.Fatal("timestamp echo fed no samples")
	}
	if karnEst.valid && karnEst.srtt >= echoEst.srtt {
		t.Fatalf("Karn sampling should under-estimate the congested path: karn srtt %.0f >= echo srtt %.0f",
			karnEst.srtt, echoEst.srtt)
	}
}
