// Package predict implements §5.2's per-link load models: the
// analytical d/(s−f) model over the collective's demand matrix and the
// switches' routing state, the simulation-based model (averaging a
// reference run of the fault-free-except-known-faults network), and
// the learned model (baseline from the first training iterations, with
// transient-fault re-baselining, Fig. 3).
//
// All predictors answer the same question a leaf switch asks at the
// end of each iteration window: how many tagged bytes should each of
// my spine-facing ingress ports have seen?
package predict

import "flowpulse/internal/topology"

// Predictor estimates per-uplink ingress volume for one collective
// iteration at each leaf.
type Predictor interface {
	// Name identifies the prediction method.
	Name() string
	// Ready reports whether predictions for the leaf are available
	// (the learned model needs warm-up iterations first).
	Ready(leafOrdinal int) bool
	// PortLoad returns the expected wire bytes per uplink ingress port
	// (uplink index = spine ordinal × trunk + trunk index).
	PortLoad(leafOrdinal int) []float64
	// SenderLoad returns the expected wire bytes per uplink ingress
	// port, broken down by the sender's leaf ordinal — the reference
	// the localizer compares against (Fig. 4).
	SenderLoad(leafOrdinal int) [][]float64
}

// IterPredictor is implemented by predictors whose expectation is
// specific to an iteration, not stationary across the job. The
// simulation model is one: adaptive spray can settle into different
// (equally balanced) per-spine splits on different iterations, so the
// cross-iteration average is a prediction no single iteration matches;
// the reference run, being iteration-indexed, resolves each one
// exactly. Consumers fall back to PortLoad/SenderLoad when the
// predictor does not implement this.
type IterPredictor interface {
	// PortLoadAt is PortLoad for one specific iteration.
	PortLoadAt(leafOrdinal int, iter uint32) []float64
	// SenderLoadAt is SenderLoad for one specific iteration.
	SenderLoadAt(leafOrdinal int, iter uint32) [][]float64
}

// WireSizer converts payload bytes to wire bytes (headers included).
// *transport.Stack implements it.
type WireSizer interface {
	WireBytesFor(bytes int) int64
}

// FIBView exposes the routing state the analytical model reads: the
// spray candidate set per (source leaf, destination leaf) and the
// administrative state of links. *fabric.Network implements it.
type FIBView interface {
	LeafUplinkCandidates(leaf, dstLeaf topology.SwitchID) []int
	LinkAdminUp(link topology.LinkID) bool
}

// Rebaseliner is implemented by predictors that can rebuild their
// baseline after the known-fault set or the routing state changes —
// the re-baseline half of the detect→quarantine→re-baseline loop. The
// simulation model deliberately does not implement it: its reference
// windows were recorded under the old routing state and cannot be
// refreshed without a new reference run.
type Rebaseliner interface {
	Rebaseline()
}

// FaultSet is the predictors' mutable known-fault set: links the
// control plane has confirmed faulty and removed from service. It
// exists separately from the FIB's administrative state so that a
// model can be told about a fault at the same instant the quarantine
// is issued — there is never a window where the model still divides
// load by the old spine count. Callers must invoke Rebaseline on the
// affected predictors after mutating the set.
//
// The zero value is unusable; use NewFaultSet. Not safe for concurrent
// use (all access happens on the engine goroutine, like the fabric).
type FaultSet struct {
	links   map[topology.LinkID]bool
	version uint64
}

// NewFaultSet returns an empty known-fault set.
func NewFaultSet() *FaultSet { return &FaultSet{links: map[topology.LinkID]bool{}} }

// Add marks a link known-faulty. Reports whether the set changed.
func (s *FaultSet) Add(l topology.LinkID) bool {
	if s.links[l] {
		return false
	}
	s.links[l] = true
	s.version++
	return true
}

// Remove clears a link from the set. Reports whether the set changed.
func (s *FaultSet) Remove(l topology.LinkID) bool {
	if !s.links[l] {
		return false
	}
	delete(s.links, l)
	s.version++
	return true
}

// Has reports whether a link is known-faulty.
func (s *FaultSet) Has(l topology.LinkID) bool { return s != nil && s.links[l] }

// Len returns the number of known-faulty links.
func (s *FaultSet) Len() int { return len(s.links) }

// Version increments on every mutation (staleness checks).
func (s *FaultSet) Version() uint64 { return s.version }
