// Package predict implements §5.2's per-link load models: the
// analytical d/(s−f) model over the collective's demand matrix and the
// switches' routing state, the simulation-based model (averaging a
// reference run of the fault-free-except-known-faults network), and
// the learned model (baseline from the first training iterations, with
// transient-fault re-baselining, Fig. 3).
//
// All predictors answer the same question a leaf switch asks at the
// end of each iteration window: how many tagged bytes should each of
// my spine-facing ingress ports have seen?
package predict

import "flowpulse/internal/topology"

// Predictor estimates per-uplink ingress volume for one collective
// iteration at each leaf.
type Predictor interface {
	// Name identifies the prediction method.
	Name() string
	// Ready reports whether predictions for the leaf are available
	// (the learned model needs warm-up iterations first).
	Ready(leafOrdinal int) bool
	// PortLoad returns the expected wire bytes per uplink ingress port
	// (uplink index = spine ordinal × trunk + trunk index).
	PortLoad(leafOrdinal int) []float64
	// SenderLoad returns the expected wire bytes per uplink ingress
	// port, broken down by the sender's leaf ordinal — the reference
	// the localizer compares against (Fig. 4).
	SenderLoad(leafOrdinal int) [][]float64
}

// WireSizer converts payload bytes to wire bytes (headers included).
// *transport.Stack implements it.
type WireSizer interface {
	WireBytesFor(bytes int) int64
}

// FIBView exposes the routing state the analytical model reads: the
// spray candidate set per (source leaf, destination leaf) and the
// administrative state of links. *fabric.Network implements it.
type FIBView interface {
	LeafUplinkCandidates(leaf, dstLeaf topology.SwitchID) []int
	LinkAdminUp(link topology.LinkID) bool
}
