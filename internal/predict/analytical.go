package predict

import (
	"flowpulse/internal/collective"
	"flowpulse/internal/topology"
)

// Analytical is §5.2's closed-form model: in a fault-free network the
// traffic of each source-destination pair is evenly balanced across
// all spines; a known fault between source (or destination) and a
// spine removes that spine, so each of the surviving s−f spines
// carries d/(s−f) of the pair's d bytes, which then lands on the
// destination leaf's ingress port from that spine. Summing over the
// pairs destined to each leaf yields the per-port prediction.
//
// With parallel links (§7), the spray set contains one entry per
// admin-up (spine, trunk) pair on the source side, and each spine's
// share splits evenly again over the admin-up trunks on the
// destination side.
type Analytical struct {
	topo   *topology.Topology
	fib    FIBView
	wire   WireSizer
	demand *collective.DemandMatrix
	faults *FaultSet // nil: FIB administrative state only

	ports   [][]float64   // [leafOrd][uplink]
	senders [][][]float64 // [leafOrd][uplink][senderLeafOrd]
}

// NewAnalytical computes the model once for a demand matrix against
// the current routing state. Call it again after known faults change
// (routing reconvergence invalidates the shares).
//
// The closed form is specific to the two-level spray geometry (§5.2);
// three-level fabrics must use the simulation or learned models (see
// core.AttachClos3), so NewAnalytical panics on them rather than
// silently producing wrong shares.
func NewAnalytical(topo *topology.Topology, fib FIBView, wire WireSizer, demand *collective.DemandMatrix) *Analytical {
	if topo.Levels != 2 {
		panic("predict: the analytical model covers two-level fabrics; use the simulation or learned model for multi-level Clos")
	}
	a := &Analytical{topo: topo, fib: fib, wire: wire, demand: demand}
	a.Rebaseline()
	return a
}

// SetFaults attaches a mutable known-fault set: links in the set are
// excluded from spray geometry in addition to admin-down links, so the
// model can be updated at quarantine time without waiting for (or
// relying on) routing reconvergence. Call Rebaseline after the set
// changes.
func (a *Analytical) SetFaults(fs *FaultSet) { a.faults = fs }

// linkUp reports whether the model should treat a link as carrying
// traffic: administratively up and not in the known-fault set.
func (a *Analytical) linkUp(l topology.LinkID) bool {
	return a.fib.LinkAdminUp(l) && !a.faults.Has(l)
}

// Rebaseline implements Rebaseliner: it recomputes every per-port
// share from the demand matrix against the *current* routing state and
// known-fault set. The closed form is cheap (O(hosts² + leaves·spines)
// at paper scale), so the remediation loop calls this on every
// quarantine and re-admission.
func (a *Analytical) Rebaseline() {
	topo := a.topo
	nLeaf := len(topo.Leaves())
	a.ports = make([][]float64, nLeaf)
	a.senders = make([][][]float64, nLeaf)
	for lo, leaf := range topo.Leaves() {
		uplinks := len(topo.Switch(leaf).Ports) - len(topo.HostsOf(leaf))
		a.ports[lo] = make([]float64, uplinks)
		a.senders[lo] = make([][]float64, uplinks)
		for u := range a.senders[lo] {
			a.senders[lo][u] = make([]float64, nLeaf)
		}
	}

	for i, srcHost := range a.demand.Hosts {
		for j, dstHost := range a.demand.Hosts {
			payload := a.demand.Bytes[i][j]
			if payload == 0 {
				continue
			}
			srcLeaf, dstLeaf := topo.LeafOf(srcHost), topo.LeafOf(dstHost)
			if srcLeaf == dstLeaf {
				continue // local traffic never reaches the spines
			}
			var wireBytes float64
			for _, msg := range a.demand.Msgs[i][j] {
				wireBytes += float64(a.wire.WireBytesFor(int(msg)))
			}
			a.spread(srcLeaf, dstLeaf, wireBytes)
		}
	}
}

// spread distributes one pair's wire bytes over the destination leaf's
// ingress ports according to the source leaf's spray set.
func (a *Analytical) spread(srcLeaf, dstLeaf topology.SwitchID, wireBytes float64) {
	topo := a.topo
	srcPorts := a.fib.LeafUplinkCandidates(srcLeaf, dstLeaf)
	if a.faults != nil && a.faults.Len() > 0 {
		// Known faults leave the spray set even if the FIB has not
		// reconverged yet.
		kept := make([]int, 0, len(srcPorts))
		for _, p := range srcPorts {
			if !a.faults.Has(topo.Switch(srcLeaf).Ports[p].Link) {
				kept = append(kept, p)
			}
		}
		srcPorts = kept
	}
	if len(srcPorts) == 0 {
		return // unreachable: nothing arrives
	}
	perSrcPort := wireBytes / float64(len(srcPorts))

	srcLeafOrd := topo.LeafOrdinal(srcLeaf)
	dstLeafOrd := topo.LeafOrdinal(dstLeaf)
	hostPorts := len(topo.HostsOf(dstLeaf))

	// Aggregate the source-side split per spine, then split each
	// spine's share across its admin-up trunks to the destination.
	perSpine := map[int]float64{}
	for _, p := range srcPorts {
		so, _ := topo.SpineOrdinalOfLeafPort(srcLeaf, p)
		perSpine[so] += perSrcPort
	}
	for so, share := range perSpine {
		spine := topo.Spines()[so]
		var upTrunks []int
		for k, link := range topo.TrunkLinks(spine, dstLeaf) {
			if a.linkUp(link) {
				upTrunks = append(upTrunks, k)
			}
		}
		if len(upTrunks) == 0 {
			continue // FIB would not have sprayed here
		}
		perTrunk := share / float64(len(upTrunks))
		for _, k := range upTrunks {
			uplink := topo.LeafUpPort(dstLeaf, so, k) - hostPorts
			a.ports[dstLeafOrd][uplink] += perTrunk
			a.senders[dstLeafOrd][uplink][srcLeafOrd] += perTrunk
		}
	}
}

// Name implements Predictor.
func (a *Analytical) Name() string { return "analytical" }

// Ready implements Predictor; the analytical model is always ready.
func (a *Analytical) Ready(int) bool { return true }

// PortLoad implements Predictor.
func (a *Analytical) PortLoad(leafOrdinal int) []float64 { return a.ports[leafOrdinal] }

// SenderLoad implements Predictor.
func (a *Analytical) SenderLoad(leafOrdinal int) [][]float64 { return a.senders[leafOrdinal] }
