package predict

import (
	"math/bits"

	"flowpulse/internal/collective"
	"flowpulse/internal/topology"
)

// Analytical is §5.2's closed-form model: in a fault-free network the
// traffic of each source-destination pair is evenly balanced across
// all spines; a known fault between source (or destination) and a
// spine removes that spine, so each of the surviving s−f spines
// carries d/(s−f) of the pair's d bytes, which then lands on the
// destination leaf's ingress port from that spine. Summing over the
// pairs destined to each leaf yields the per-port prediction.
//
// With parallel links (§7), the spray set contains one entry per
// admin-up (spine, trunk) pair on the source side, and each spine's
// share splits evenly again over the admin-up trunks on the
// destination side.
//
// When a quarantine leaves different senders with *different* spray
// sets toward the same destination leaf (one sender forced onto a
// subset of spines, another free to use all of them), the per-pair
// even split stops describing the fabric: adaptive spraying drains the
// flexible senders away from the ports the constrained sender is
// forced onto, equalizing total ingress per port wherever it can. For
// those destination leaves the model solves that equilibrium exactly —
// min-max water-filling over the senders' allowed port sets — instead
// of summing even splits. Destinations whose senders all share one
// spray set (every fault-free fabric, and most faulted ones) keep the
// closed-form path bit-for-bit.
type Analytical struct {
	topo   *topology.Topology
	fib    FIBView
	wire   WireSizer
	demand *collective.DemandMatrix
	faults *FaultSet // nil: FIB administrative state only

	ports   [][]float64   // [leafOrd][uplink]
	senders [][][]float64 // [leafOrd][uplink][senderLeafOrd]
}

// NewAnalytical computes the model once for a demand matrix against
// the current routing state. Call it again after known faults change
// (routing reconvergence invalidates the shares).
//
// The closed form is specific to the two-level spray geometry (§5.2);
// three-level fabrics must use the simulation or learned models (see
// core.AttachClos3), so NewAnalytical panics on them rather than
// silently producing wrong shares.
func NewAnalytical(topo *topology.Topology, fib FIBView, wire WireSizer, demand *collective.DemandMatrix) *Analytical {
	if topo.Levels != 2 {
		panic("predict: the analytical model covers two-level fabrics; use the simulation or learned model for multi-level Clos")
	}
	a := &Analytical{topo: topo, fib: fib, wire: wire, demand: demand}
	a.Rebaseline()
	return a
}

// SetDemand swaps the demand matrix the closed form is computed from —
// the predictor half of a workload re-plan: after the resilience layer
// re-ranks or shrinks the collective, its traffic pattern changes and
// the old per-port shares would raise false alerts on a healthy
// fabric. Call Rebaseline after the swap (the re-plan path does, via
// the remediator's single rebaseline hook).
func (a *Analytical) SetDemand(d *collective.DemandMatrix) { a.demand = d }

// SetFaults attaches a mutable known-fault set: links in the set are
// excluded from spray geometry in addition to admin-down links, so the
// model can be updated at quarantine time without waiting for (or
// relying on) routing reconvergence. Call Rebaseline after the set
// changes.
func (a *Analytical) SetFaults(fs *FaultSet) { a.faults = fs }

// linkUp reports whether the model should treat a link as carrying
// traffic: administratively up and not in the known-fault set.
func (a *Analytical) linkUp(l topology.LinkID) bool {
	return a.fib.LinkAdminUp(l) && !a.faults.Has(l)
}

// Rebaseline implements Rebaseliner: it recomputes every per-port
// share from the demand matrix against the *current* routing state and
// known-fault set. The closed form is cheap (O(hosts² + leaves·spines)
// at paper scale), so the remediation loop calls this on every
// quarantine and re-admission.
func (a *Analytical) Rebaseline() {
	topo := a.topo
	nLeaf := len(topo.Leaves())
	a.ports = make([][]float64, nLeaf)
	a.senders = make([][][]float64, nLeaf)
	for lo, leaf := range topo.Leaves() {
		uplinks := len(topo.Switch(leaf).Ports) - len(topo.HostsOf(leaf))
		a.ports[lo] = make([]float64, uplinks)
		a.senders[lo] = make([][]float64, uplinks)
		for u := range a.senders[lo] {
			a.senders[lo][u] = make([]float64, nLeaf)
		}
	}

	// First pass: per destination leaf, find whether every sender's
	// spray set lands on the same ingress port set. Where they differ
	// (only possible with faults or admin-down asymmetry), the even
	// split is replaced by the water-filling equilibrium below.
	asym := a.findAsymmetric()

	var contribs map[int][]contrib
	for i, srcHost := range a.demand.Hosts {
		for j, dstHost := range a.demand.Hosts {
			payload := a.demand.Bytes[i][j]
			if payload == 0 {
				continue
			}
			srcLeaf, dstLeaf := topo.LeafOf(srcHost), topo.LeafOf(dstHost)
			if srcLeaf == dstLeaf {
				continue // local traffic never reaches the spines
			}
			var wireBytes float64
			for _, msg := range a.demand.Msgs[i][j] {
				wireBytes += float64(a.wire.WireBytesFor(int(msg)))
			}
			dl := topo.LeafOrdinal(dstLeaf)
			if asym[dl] {
				mask := a.pairPortMask(srcLeaf, dstLeaf)
				if mask != 0 {
					if contribs == nil {
						contribs = map[int][]contrib{}
					}
					contribs[dl] = append(contribs[dl], contrib{
						src: topo.LeafOrdinal(srcLeaf), mask: mask, bytes: wireBytes,
					})
				}
				continue
			}
			a.spread(srcLeaf, dstLeaf, wireBytes)
		}
	}
	for dl, cs := range contribs {
		a.waterfill(dl, cs)
	}
}

// contrib is one sender's crossing volume toward a destination leaf,
// with the ingress ports (bitmask) its spray set can land on.
type contrib struct {
	src   int
	mask  uint64
	bytes float64
}

// findAsymmetric returns, per destination leaf ordinal, whether two
// senders with demand toward it have different ingress port sets. Port
// indexes ≥ 64 (beyond the bitmask) conservatively report symmetric,
// falling back to the even-split path.
func (a *Analytical) findAsymmetric() []bool {
	topo := a.topo
	nLeaf := len(topo.Leaves())
	asym := make([]bool, nLeaf)
	seen := make([]uint64, nLeaf) // first sender's mask, 0 = none yet
	wide := make([]bool, nLeaf)   // some port index does not fit the mask
	for i, srcHost := range a.demand.Hosts {
		for j, dstHost := range a.demand.Hosts {
			if a.demand.Bytes[i][j] == 0 {
				continue
			}
			srcLeaf, dstLeaf := topo.LeafOf(srcHost), topo.LeafOf(dstHost)
			if srcLeaf == dstLeaf {
				continue
			}
			dl := topo.LeafOrdinal(dstLeaf)
			mask := a.pairPortMask(srcLeaf, dstLeaf)
			if mask == maskOverflow {
				wide[dl] = true
				continue
			}
			if mask == 0 {
				continue
			}
			switch {
			case seen[dl] == 0:
				seen[dl] = mask
			case seen[dl] != mask:
				asym[dl] = true
			}
		}
	}
	for dl := range asym {
		if wide[dl] {
			asym[dl] = false
		}
	}
	return asym
}

// maskOverflow marks a pair whose ingress ports exceed the 64-bit
// mask; such destinations keep the even-split path.
const maskOverflow = ^uint64(0)

// pairPortMask returns the destination-leaf ingress ports (as a
// bitmask) one source leaf's spray set can land on, mirroring spread's
// pruning exactly.
func (a *Analytical) pairPortMask(srcLeaf, dstLeaf topology.SwitchID) uint64 {
	topo := a.topo
	hostPorts := len(topo.HostsOf(dstLeaf))
	var mask uint64
	for _, p := range a.fib.LeafUplinkCandidates(srcLeaf, dstLeaf) {
		if a.faults != nil && a.faults.Len() > 0 &&
			a.faults.Has(topo.Switch(srcLeaf).Ports[p].Link) {
			continue
		}
		so, _ := topo.SpineOrdinalOfLeafPort(srcLeaf, p)
		for k, link := range topo.TrunkLinks(topo.Spines()[so], dstLeaf) {
			if !a.linkUp(link) {
				continue
			}
			u := topo.LeafUpPort(dstLeaf, so, k) - hostPorts
			if u >= 64 {
				return maskOverflow
			}
			mask |= 1 << u
		}
	}
	return mask
}

// waterfill fills one destination leaf's ingress ports with the
// min-max equilibrium of its senders: adaptive spraying pushes every
// flexible sender away from overloaded ports until no port can be
// relieved, which is exactly the divisible restricted-assignment
// optimum. The optimum is found by the classic binding-set recursion:
// the most-loaded port set B maximizes W(B)/|B| over subsets (W(B) =
// total bytes of senders confined to B), its ports all carry that
// level, and the remaining senders place nothing on B.
func (a *Analytical) waterfill(dl int, cs []contrib) {
	var union uint64
	for _, c := range cs {
		union |= c.mask
	}
	for len(cs) > 0 && union != 0 {
		bestMask, bestRatio, bestBits := uint64(0), -1.0, 0
		for b := union; b != 0; b = (b - 1) & union {
			var w float64
			for _, c := range cs {
				if c.mask&^b == 0 {
					w += c.bytes
				}
			}
			n := bits.OnesCount64(b)
			ratio := w / float64(n)
			if ratio > bestRatio || (ratio == bestRatio && n > bestBits) {
				bestMask, bestRatio, bestBits = b, ratio, n
			}
		}
		if bestRatio <= 0 {
			return // only zero-byte senders remain
		}
		var in, rest []contrib
		for _, c := range cs {
			if c.mask&^bestMask == 0 {
				in = append(in, c)
			} else {
				c.mask &^= bestMask
				rest = append(rest, c)
			}
		}
		for b := bestMask; b != 0; b &= b - 1 {
			a.ports[dl][bits.TrailingZeros64(b)] = bestRatio
		}
		a.attribute(dl, bestMask, bestRatio, in)
		union &^= bestMask
		cs = rest
	}
}

// attribute splits one binding set's port loads back into per-sender
// shares (the localizer's reference) by iterative proportional
// fitting: rows converge to each sender's volume, columns to the
// common port level. Port totals are set exactly by waterfill; the
// sender breakdown is the IPF fixed point, which the feasibility of
// the binding set guarantees exists.
func (a *Analytical) attribute(dl int, mask uint64, level float64, cs []contrib) {
	var ports []int
	for b := mask; b != 0; b &= b - 1 {
		ports = append(ports, bits.TrailingZeros64(b))
	}
	f := make([][]float64, len(cs))
	for i, c := range cs {
		f[i] = make([]float64, len(ports))
		even := c.bytes / float64(bits.OnesCount64(c.mask))
		for j, p := range ports {
			if c.mask&(1<<p) != 0 {
				f[i][j] = even
			}
		}
	}
	for it := 0; it < 64; it++ {
		for j := range ports {
			var col float64
			for i := range f {
				col += f[i][j]
			}
			if col > 0 {
				s := level / col
				for i := range f {
					f[i][j] *= s
				}
			}
		}
		for i, c := range cs {
			var row float64
			for j := range ports {
				row += f[i][j]
			}
			if row > 0 {
				s := c.bytes / row
				for j := range ports {
					f[i][j] *= s
				}
			}
		}
	}
	for i, c := range cs {
		for j, p := range ports {
			a.senders[dl][p][c.src] += f[i][j]
		}
	}
}

// spread distributes one pair's wire bytes over the destination leaf's
// ingress ports according to the source leaf's spray set.
func (a *Analytical) spread(srcLeaf, dstLeaf topology.SwitchID, wireBytes float64) {
	topo := a.topo
	srcPorts := a.fib.LeafUplinkCandidates(srcLeaf, dstLeaf)
	if a.faults != nil && a.faults.Len() > 0 {
		// Known faults leave the spray set even if the FIB has not
		// reconverged yet.
		kept := make([]int, 0, len(srcPorts))
		for _, p := range srcPorts {
			if !a.faults.Has(topo.Switch(srcLeaf).Ports[p].Link) {
				kept = append(kept, p)
			}
		}
		srcPorts = kept
	}
	if len(srcPorts) == 0 {
		return // unreachable: nothing arrives
	}
	perSrcPort := wireBytes / float64(len(srcPorts))

	srcLeafOrd := topo.LeafOrdinal(srcLeaf)
	dstLeafOrd := topo.LeafOrdinal(dstLeaf)
	hostPorts := len(topo.HostsOf(dstLeaf))

	// Aggregate the source-side split per spine, then split each
	// spine's share across its admin-up trunks to the destination.
	perSpine := map[int]float64{}
	for _, p := range srcPorts {
		so, _ := topo.SpineOrdinalOfLeafPort(srcLeaf, p)
		perSpine[so] += perSrcPort
	}
	for so, share := range perSpine {
		spine := topo.Spines()[so]
		var upTrunks []int
		for k, link := range topo.TrunkLinks(spine, dstLeaf) {
			if a.linkUp(link) {
				upTrunks = append(upTrunks, k)
			}
		}
		if len(upTrunks) == 0 {
			continue // FIB would not have sprayed here
		}
		perTrunk := share / float64(len(upTrunks))
		for _, k := range upTrunks {
			uplink := topo.LeafUpPort(dstLeaf, so, k) - hostPorts
			a.ports[dstLeafOrd][uplink] += perTrunk
			a.senders[dstLeafOrd][uplink][srcLeafOrd] += perTrunk
		}
	}
}

// Name implements Predictor.
func (a *Analytical) Name() string { return "analytical" }

// Ready implements Predictor; the analytical model is always ready.
func (a *Analytical) Ready(int) bool { return true }

// PortLoad implements Predictor.
func (a *Analytical) PortLoad(leafOrdinal int) []float64 { return a.ports[leafOrdinal] }

// SenderLoad implements Predictor.
func (a *Analytical) SenderLoad(leafOrdinal int) [][]float64 { return a.senders[leafOrdinal] }
