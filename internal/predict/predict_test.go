package predict

import (
	"math"
	"testing"
	"testing/quick"

	"flowpulse/internal/collective"
	"flowpulse/internal/fabric"
	"flowpulse/internal/sim"
	"flowpulse/internal/telemetry"
	"flowpulse/internal/topology"
)

// wire4k models the default transport framing: 4096-byte MTU, 64-byte
// headers.
type wire4k struct{}

func (wire4k) WireBytesFor(bytes int) int64 {
	pkts := (bytes + 4095) / 4096
	return int64(bytes) + int64(pkts)*64
}

func buildNet(t *testing.T, cfg topology.FatTreeConfig) (*topology.Topology, *fabric.Network) {
	t.Helper()
	topo, err := topology.NewFatTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net := fabric.MustNew(fabric.Config{Topo: topo, Engine: sim.NewEngine(), Seed: 1})
	return topo, net
}

func pairDemand(hosts []topology.HostID, src, dst int, bytes int64) *collective.DemandMatrix {
	n := len(hosts)
	d := &collective.DemandMatrix{Hosts: hosts, Bytes: make([][]int64, n), Msgs: make([][][]int64, n)}
	for i := range d.Bytes {
		d.Bytes[i] = make([]int64, n)
		d.Msgs[i] = make([][]int64, n)
	}
	d.Bytes[src][dst] = bytes
	d.Msgs[src][dst] = []int64{bytes}
	return d
}

func hostsOf(topo *topology.Topology) []topology.HostID {
	hs := make([]topology.HostID, len(topo.Hosts))
	for i := range hs {
		hs[i] = topology.HostID(i)
	}
	return hs
}

func TestAnalyticalFaultFreeEvenSplit(t *testing.T) {
	topo, net := buildNet(t, topology.FatTreeConfig{Leaves: 4, Spines: 8})
	const d = 1 << 20
	dm := pairDemand(hostsOf(topo), 0, 3, d)
	a := NewAnalytical(topo, net, wire4k{}, dm)

	wire := float64(wire4k{}.WireBytesFor(d))
	ports := a.PortLoad(3)
	if len(ports) != 8 {
		t.Fatalf("uplink count = %d, want 8", len(ports))
	}
	for u, v := range ports {
		if math.Abs(v-wire/8) > 1e-6 {
			t.Errorf("port %d load %v, want %v", u, v, wire/8)
		}
	}
	// Other leaves see nothing.
	for lo := 0; lo < 3; lo++ {
		for _, v := range a.PortLoad(lo) {
			if v != 0 {
				t.Fatalf("leaf %d unexpectedly loaded", lo)
			}
		}
	}
}

func TestAnalyticalKnownFaultExcludesSpine(t *testing.T) {
	topo, net := buildNet(t, topology.FatTreeConfig{Leaves: 4, Spines: 8})
	dstLeaf := topo.LeafOf(3)
	net.SetLinkAdmin(topo.TrunkLinks(topo.Spines()[2], dstLeaf)[0], false)

	const d = 1 << 20
	dm := pairDemand(hostsOf(topo), 0, 3, d)
	a := NewAnalytical(topo, net, wire4k{}, dm)
	wire := float64(wire4k{}.WireBytesFor(d))
	ports := a.PortLoad(3)
	if ports[2] != 0 {
		t.Fatalf("excluded spine predicted %v", ports[2])
	}
	for u, v := range ports {
		if u == 2 {
			continue
		}
		if math.Abs(v-wire/7) > 1e-6 {
			t.Errorf("port %d load %v, want d/(s-f) = %v", u, v, wire/7)
		}
	}
}

func TestAnalyticalSourceSideFaultAlsoExcludes(t *testing.T) {
	topo, net := buildNet(t, topology.FatTreeConfig{Leaves: 4, Spines: 8})
	srcLeaf := topo.LeafOf(0)
	net.SetLinkAdmin(topo.TrunkLinks(topo.Spines()[5], srcLeaf)[0], false)

	dm := pairDemand(hostsOf(topo), 0, 3, 1<<20)
	a := NewAnalytical(topo, net, wire4k{}, dm)
	ports := a.PortLoad(3)
	if ports[5] != 0 {
		t.Fatalf("spine with source-side fault predicted %v", ports[5])
	}
	wire := float64(wire4k{}.WireBytesFor(1 << 20))
	if math.Abs(ports[0]-wire/7) > 1e-6 {
		t.Fatalf("surviving port load %v, want %v", ports[0], wire/7)
	}
}

func TestAnalyticalLocalPairContributesNothing(t *testing.T) {
	topo, net := buildNet(t, topology.FatTreeConfig{Leaves: 2, Spines: 4, HostsPerLeaf: 2})
	// Hosts 0,1 share leaf 0.
	dm := pairDemand(hostsOf(topo), 0, 1, 1<<20)
	a := NewAnalytical(topo, net, wire4k{}, dm)
	for lo := 0; lo < 2; lo++ {
		for _, v := range a.PortLoad(lo) {
			if v != 0 {
				t.Fatal("local pair predicted spine traffic")
			}
		}
	}
}

func TestAnalyticalSenderBreakdown(t *testing.T) {
	topo, net := buildNet(t, topology.FatTreeConfig{Leaves: 4, Spines: 4})
	hosts := hostsOf(topo)
	dm := pairDemand(hosts, 0, 3, 1<<20)
	dm.Bytes[1][3] = 2 << 20
	dm.Msgs[1][3] = []int64{2 << 20}
	a := NewAnalytical(topo, net, wire4k{}, dm)
	senders := a.SenderLoad(3)
	w0 := float64(wire4k{}.WireBytesFor(1<<20)) / 4
	w1 := float64(wire4k{}.WireBytesFor(2<<20)) / 4
	for u := 0; u < 4; u++ {
		if math.Abs(senders[u][0]-w0) > 1e-6 || math.Abs(senders[u][1]-w1) > 1e-6 {
			t.Fatalf("port %d senders: %v", u, senders[u])
		}
		if math.Abs(a.PortLoad(3)[u]-(w0+w1)) > 1e-6 {
			t.Fatalf("port sum != sender sum at %d", u)
		}
	}
}

func TestAnalyticalTrunkSplit(t *testing.T) {
	topo, net := buildNet(t, topology.FatTreeConfig{Leaves: 2, Spines: 2, Trunk: 2})
	dm := pairDemand(hostsOf(topo), 0, 1, 1<<20)
	a := NewAnalytical(topo, net, wire4k{}, dm)
	ports := a.PortLoad(1)
	if len(ports) != 4 {
		t.Fatalf("uplinks = %d, want 4", len(ports))
	}
	wire := float64(wire4k{}.WireBytesFor(1 << 20))
	for u, v := range ports {
		if math.Abs(v-wire/4) > 1e-6 {
			t.Errorf("trunk port %d load %v, want %v", u, v, wire/4)
		}
	}
	// Down one trunk of spine 0 on the destination side: its twin
	// takes the whole spine share.
	net.SetLinkAdmin(topo.TrunkLinks(topo.Spines()[0], topo.LeafOf(1))[0], false)
	a = NewAnalytical(topo, net, wire4k{}, dm)
	ports = a.PortLoad(1)
	if ports[0] != 0 {
		t.Fatalf("downed trunk predicted %v", ports[0])
	}
	// The source still sprays over all 4 of its uplink ports (its own
	// links are healthy and spine 0 still reaches the leaf), so spine 0
	// receives wire/2 and forwards it all down its surviving trunk.
	if math.Abs(ports[1]-wire/2) > 1e-6 {
		t.Fatalf("surviving trunk of spine 0: %v, want %v", ports[1], wire/2)
	}
	if math.Abs(ports[2]-wire/4) > 1e-6 || math.Abs(ports[3]-wire/4) > 1e-6 {
		t.Fatalf("spine 1 trunks: %v %v, want %v", ports[2], ports[3], wire/4)
	}
}

// Property: total predicted load across all leaves equals total wire
// bytes of all non-local pairs, for random demands and random known
// faults (mass conservation).
func TestAnalyticalMassConservationProperty(t *testing.T) {
	topo, net := buildNet(t, topology.FatTreeConfig{Leaves: 6, Spines: 6})
	hosts := hostsOf(topo)
	f := func(seed uint64, faults uint8) bool {
		rng := sim.NewRNG(seed, "prop")
		// Random demand.
		n := len(hosts)
		dm := &collective.DemandMatrix{Hosts: hosts, Bytes: make([][]int64, n), Msgs: make([][][]int64, n)}
		var want float64
		for i := range dm.Bytes {
			dm.Bytes[i] = make([]int64, n)
			dm.Msgs[i] = make([][]int64, n)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j || rng.IntN(2) == 0 {
					continue
				}
				b := int64(rng.IntN(1<<20) + 1)
				dm.Bytes[i][j] = b
				dm.Msgs[i][j] = []int64{b}
			}
		}
		// Random pre-existing faults on leaf-spine links (avoid fully
		// disconnecting: at most 2).
		downed := []topology.LinkID{}
		for k := 0; k < int(faults%3); k++ {
			leaf := topo.Leaves()[rng.IntN(6)]
			spine := topo.Spines()[rng.IntN(6)]
			l := topo.TrunkLinks(leaf, spine)[0]
			net.SetLinkAdmin(l, false)
			downed = append(downed, l)
		}
		a := NewAnalytical(topo, net, wire4k{}, dm)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if dm.Bytes[i][j] == 0 || topo.LeafOf(hosts[i]) == topo.LeafOf(hosts[j]) {
					continue
				}
				// Unreachable pairs contribute nothing.
				if len(net.LeafUplinkCandidates(topo.LeafOf(hosts[i]), topo.LeafOf(hosts[j]))) == 0 {
					continue
				}
				want += float64(wire4k{}.WireBytesFor(int(dm.Bytes[i][j])))
			}
		}
		var got float64
		for lo := range topo.Leaves() {
			for _, v := range a.PortLoad(lo) {
				got += v
			}
		}
		for _, l := range downed {
			net.SetLinkAdmin(l, true)
		}
		return math.Abs(got-want) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestAnalyticalRebaselineTracksAdminState checks that Rebaseline
// recomputes against the live FIB: quarantine a destination-side link,
// rebaseline, and the model moves to d/(s−1); reconnect and rebaseline
// restores the original shares exactly.
func TestAnalyticalRebaselineTracksAdminState(t *testing.T) {
	topo, net := buildNet(t, topology.FatTreeConfig{Leaves: 4, Spines: 8})
	const d = 1 << 20
	dm := pairDemand(hostsOf(topo), 0, 3, d)
	a := NewAnalytical(topo, net, wire4k{}, dm)
	before := append([]float64(nil), a.PortLoad(3)...)

	link := topo.TrunkLinks(topo.Spines()[2], topo.LeafOf(3))[0]
	net.DisconnectLink(link)
	a.Rebaseline()
	wire := float64(wire4k{}.WireBytesFor(d))
	ports := a.PortLoad(3)
	if ports[2] != 0 {
		t.Fatalf("quarantined spine predicted %v after rebaseline", ports[2])
	}
	if math.Abs(ports[0]-wire/7) > 1e-6 {
		t.Fatalf("surviving port %v, want d/(s-1) = %v", ports[0], wire/7)
	}

	net.ReconnectLink(link)
	a.Rebaseline()
	after := a.PortLoad(3)
	for u := range before {
		if before[u] != after[u] {
			t.Fatalf("port %d: %v before, %v after round trip", u, before[u], after[u])
		}
	}
}

// TestAnalyticalFaultSetMasksBeforeReconvergence checks the known-fault
// set path with the FIB untouched. The semantics are asymmetric, like
// the real pre-reconvergence fabric: a source-side fault is local
// knowledge — the leaf stops spraying on it, so the remaining spray
// ports absorb its share — while a destination-side fault is remote,
// so the share sprayed toward it is simply lost, not redistributed.
func TestAnalyticalFaultSetMasksBeforeReconvergence(t *testing.T) {
	topo, net := buildNet(t, topology.FatTreeConfig{Leaves: 4, Spines: 8})
	const d = 1 << 20
	dm := pairDemand(hostsOf(topo), 0, 3, d)
	a := NewAnalytical(topo, net, wire4k{}, dm)
	fs := NewFaultSet()
	a.SetFaults(fs)
	wire := float64(wire4k{}.WireBytesFor(d))

	// Destination-side fault: that ingress port goes dark, the other
	// seven keep their un-reconverged wire/8 share.
	fs.Add(topo.TrunkLinks(topo.Spines()[2], topo.LeafOf(3))[0])
	a.Rebaseline()
	if ports := a.PortLoad(3); ports[2] != 0 || math.Abs(ports[0]-wire/8) > 1e-6 {
		t.Fatalf("fault set not honoured on destination side: %v", ports)
	}

	// Source-side fault too: the source's spray set shrinks to seven
	// ports, so each surviving spine now receives wire/7 — and spine
	// 2's share is still lost at the destination trunk.
	fs.Add(topo.TrunkLinks(topo.Spines()[5], topo.LeafOf(0))[0])
	a.Rebaseline()
	if ports := a.PortLoad(3); ports[5] != 0 || ports[2] != 0 || math.Abs(ports[0]-wire/7) > 1e-6 {
		t.Fatalf("fault set not honoured on source side: %v", ports)
	}

	// Removing the faults and rebaselining restores the clean shares.
	for _, l := range []topology.LinkID{
		topo.TrunkLinks(topo.Spines()[2], topo.LeafOf(3))[0],
		topo.TrunkLinks(topo.Spines()[5], topo.LeafOf(0))[0],
	} {
		fs.Remove(l)
	}
	a.Rebaseline()
	for u, v := range a.PortLoad(3) {
		if math.Abs(v-wire/8) > 1e-6 {
			t.Fatalf("port %d after fault-set clear: %v, want %v", u, v, wire/8)
		}
	}
}

func TestFaultSetSemantics(t *testing.T) {
	fs := NewFaultSet()
	if fs.Has(3) || fs.Len() != 0 {
		t.Fatal("fresh set not empty")
	}
	if !fs.Add(3) || fs.Add(3) {
		t.Fatal("Add change-reporting wrong")
	}
	if !fs.Has(3) || fs.Len() != 1 {
		t.Fatal("Add did not take")
	}
	v := fs.Version()
	if !fs.Remove(3) || fs.Remove(3) {
		t.Fatal("Remove change-reporting wrong")
	}
	if fs.Version() == v {
		t.Fatal("version did not advance on mutation")
	}
	var nilSet *FaultSet
	if nilSet.Has(1) {
		t.Fatal("nil set claims membership")
	}
}

func TestLearnedForcedRebaseline(t *testing.T) {
	l := NewLearned(2, LearnedConfig{Warmup: 2})
	l.Observe(synthWindow(0, 1, []int64{100, 300}))
	l.Observe(synthWindow(0, 2, []int64{200, 100}))
	if !l.Ready(0) {
		t.Fatal("not ready after warmup")
	}
	l.Rebaseline()
	if l.Ready(0) || l.ForcedRebaselines != 1 {
		t.Fatalf("forced rebaseline did not reset: ready=%v forced=%d", l.Ready(0), l.ForcedRebaselines)
	}
	// New warmup windows (the post-quarantine traffic) form the new
	// baseline.
	l.Observe(synthWindow(0, 3, []int64{400, 400}))
	l.Observe(synthWindow(0, 4, []int64{600, 600}))
	if !l.Ready(0) {
		t.Fatal("not ready after re-warmup")
	}
	if got := l.PortLoad(0); got[0] != 500 || got[1] != 500 {
		t.Fatalf("post-rebaseline baseline: %v", got)
	}
}

func synthWindow(leafOrd int, iter uint32, ports []int64) *telemetry.Window {
	senders := make([][]int64, len(ports))
	for u := range senders {
		senders[u] = []int64{ports[u]} // single sender leaf 0
	}
	return &telemetry.Window{LeafOrdinal: leafOrd, Iter: iter, PortBytes: ports, SenderBytes: senders}
}

func TestSimulationPredictorAverages(t *testing.T) {
	ws := []*telemetry.Window{
		synthWindow(0, 1, []int64{100, 200}),
		synthWindow(0, 2, []int64{300, 400}),
		synthWindow(1, 1, []int64{10, 20}),
	}
	s, err := NewSimulation(2, ws)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Ready(0) || !s.Ready(1) {
		t.Fatal("leaves with windows not ready")
	}
	if got := s.PortLoad(0); got[0] != 200 || got[1] != 300 {
		t.Fatalf("averaged loads: %v", got)
	}
	if got := s.SenderLoad(1); got[1][0] != 20 {
		t.Fatalf("sender load: %v", got)
	}
	if _, err := NewSimulation(2, nil); err == nil {
		t.Fatal("empty reference accepted")
	}
}

func TestLearnedWarmupAndReady(t *testing.T) {
	l := NewLearned(2, LearnedConfig{Warmup: 2})
	if l.Ready(0) {
		t.Fatal("ready before any window")
	}
	l.Observe(synthWindow(0, 1, []int64{100, 300}))
	if l.Ready(0) {
		t.Fatal("ready after 1 of 2 warmup windows")
	}
	l.Observe(synthWindow(0, 2, []int64{200, 100}))
	if !l.Ready(0) || l.Ready(1) {
		t.Fatal("readiness wrong after warmup")
	}
	if got := l.PortLoad(0); got[0] != 150 || got[1] != 200 {
		t.Fatalf("baseline: %v", got)
	}
}

func TestLearnedIgnoresFaultyWindows(t *testing.T) {
	// Baseline is balanced; a new fault (one port depressed) must NOT
	// be absorbed.
	l := NewLearned(1, LearnedConfig{Warmup: 1, RebaselineAfter: 2})
	l.Observe(synthWindow(0, 1, []int64{1000, 1000, 1000, 1000}))
	for it := uint32(2); it < 10; it++ {
		l.Observe(synthWindow(0, it, []int64{850, 1050, 1050, 1050})) // fault: port 0 down ~15%
	}
	if l.Rebaselines != 0 {
		t.Fatal("faulty windows absorbed into baseline")
	}
	if got := l.PortLoad(0)[0]; got != 1000 {
		t.Fatalf("baseline drifted to %v", got)
	}
}

func TestLearnedRebaselinesAfterTransientHeals(t *testing.T) {
	// Fig 3: warmup happens DURING a transient fault (port 0 low).
	// When the fault heals, load re-balances evenly; the model must
	// adopt the healthier baseline.
	l := NewLearned(1, LearnedConfig{Warmup: 2, RebaselineAfter: 3})
	l.Observe(synthWindow(0, 1, []int64{500, 1167, 1167, 1166}))
	l.Observe(synthWindow(0, 2, []int64{500, 1167, 1166, 1167}))
	if !l.Ready(0) {
		t.Fatal("not ready after warmup")
	}
	if cv := l.BaselineCV(0); cv < 0.2 {
		t.Fatalf("faulty baseline CV %v unexpectedly low", cv)
	}
	// Fault heals: even distribution, same total (4000).
	for it := uint32(3); it <= 5; it++ {
		l.Observe(synthWindow(0, it, []int64{1000, 1000, 1000, 1000}))
	}
	if l.Rebaselines != 1 {
		t.Fatalf("rebaselines = %d, want 1", l.Rebaselines)
	}
	if got := l.PortLoad(0)[0]; got != 1000 {
		t.Fatalf("rebaselined port 0 = %v, want 1000", got)
	}
}

func TestLearnedRebaselineRequiresConsecutive(t *testing.T) {
	l := NewLearned(1, LearnedConfig{Warmup: 1, RebaselineAfter: 3})
	l.Observe(synthWindow(0, 1, []int64{500, 1166, 1167, 1167}))
	// Two healthy, one faulty, two healthy: streak resets, no rebaseline.
	l.Observe(synthWindow(0, 2, []int64{1000, 1000, 1000, 1000}))
	l.Observe(synthWindow(0, 3, []int64{1000, 1000, 1000, 1000}))
	l.Observe(synthWindow(0, 4, []int64{500, 1166, 1167, 1167}))
	l.Observe(synthWindow(0, 5, []int64{1000, 1000, 1000, 1000}))
	l.Observe(synthWindow(0, 6, []int64{1000, 1000, 1000, 1000}))
	if l.Rebaselines != 0 {
		t.Fatal("rebaselined on a broken streak")
	}
	l.Observe(synthWindow(0, 7, []int64{1000, 1000, 1000, 1000}))
	if l.Rebaselines != 1 {
		t.Fatal("did not rebaseline after full streak")
	}
}

func TestLearnedTotalChangeBlocksRebaseline(t *testing.T) {
	// A balanced window with a very different TOTAL is a workload
	// change, not a healed fault.
	l := NewLearned(1, LearnedConfig{Warmup: 1, RebaselineAfter: 2})
	l.Observe(synthWindow(0, 1, []int64{500, 1166, 1167, 1167}))
	for it := uint32(2); it < 8; it++ {
		l.Observe(synthWindow(0, it, []int64{400, 400, 400, 400}))
	}
	if l.Rebaselines != 0 {
		t.Fatal("rebaselined despite total volume change")
	}
}

func TestPortCV(t *testing.T) {
	cv, tot := portCVF([]float64{100, 100, 100, 100})
	if cv != 0 || tot != 400 {
		t.Fatalf("cv=%v tot=%v", cv, tot)
	}
	cv, _ = portCVF([]float64{0, 200})
	if math.Abs(cv-1) > 1e-12 {
		t.Fatalf("cv of {0,200} = %v, want 1", cv)
	}
	if cv, tot := portCVF(nil); cv != 0 || tot != 0 {
		t.Fatal("empty input not handled")
	}
}

// multiDemand builds a demand matrix from (src, dst, bytes) triples.
func multiDemand(hosts []topology.HostID, pairs [][3]int64) *collective.DemandMatrix {
	n := len(hosts)
	d := &collective.DemandMatrix{Hosts: hosts, Bytes: make([][]int64, n), Msgs: make([][][]int64, n)}
	for i := range d.Bytes {
		d.Bytes[i] = make([]int64, n)
		d.Msgs[i] = make([][]int64, n)
	}
	for _, p := range pairs {
		src, dst, bytes := p[0], p[1], p[2]
		d.Bytes[src][dst] = bytes
		d.Msgs[src][dst] = []int64{bytes}
	}
	return d
}

// TestAnalyticalWaterFillEqualizesAsymmetricSenders reproduces the
// post-quarantine regime the re-planner creates: one sender is forced
// onto a single spine (its own uplink to the other spine is admin-
// down), another is free to use both. Adaptive spraying equalizes the
// destination's two ingress ports; the per-pair even split would
// predict a 3:5 imbalance and raise a false deficit alert on a healthy
// link. The model must predict the equalized split.
func TestAnalyticalWaterFillEqualizesAsymmetricSenders(t *testing.T) {
	topo, net := buildNet(t, topology.FatTreeConfig{Leaves: 4, Spines: 2})
	hosts := hostsOf(topo)
	// host1 (leaf1) → host2 (leaf2): 2 MiB, forced via spine 1 below.
	// host0 (leaf0) → host2 (leaf2): 6 MiB, flexible.
	dm := multiDemand(hosts, [][3]int64{{1, 2, 2 << 20}, {0, 2, 6 << 20}})
	net.DisconnectLink(topo.TrunkLinks(topo.Spines()[0], topo.LeafOf(1))[0])
	a := NewAnalytical(topo, net, wire4k{}, dm)

	wForced := float64(wire4k{}.WireBytesFor(2 << 20))
	wFlex := float64(wire4k{}.WireBytesFor(6 << 20))
	half := (wForced + wFlex) / 2
	ports := a.PortLoad(2)
	if math.Abs(ports[0]-half) > 1e-6 || math.Abs(ports[1]-half) > 1e-6 {
		t.Fatalf("asymmetric senders not equalized: %v, want %v each", ports, half)
	}
	// Sender attribution: the forced sender sits entirely on port 1;
	// the flexible sender fills the rest of both ports.
	senders := a.SenderLoad(2)
	if math.Abs(senders[1][1]-wForced) > 1e-3 {
		t.Fatalf("forced sender on port 1 = %v, want %v", senders[1][1], wForced)
	}
	if math.Abs(senders[0][0]-half) > 1e-3 || math.Abs(senders[1][0]-(half-wForced)) > 1e-3 {
		t.Fatalf("flexible sender split = %v/%v, want %v/%v",
			senders[0][0], senders[1][0], half, half-wForced)
	}
}

// TestAnalyticalWaterFillBindingSubset drives the recursion: the
// forced sender alone overloads its port beyond the global average, so
// that port becomes the binding set at the forced volume and the
// flexible sender keeps the remaining port to itself.
func TestAnalyticalWaterFillBindingSubset(t *testing.T) {
	topo, net := buildNet(t, topology.FatTreeConfig{Leaves: 4, Spines: 2})
	hosts := hostsOf(topo)
	dm := multiDemand(hosts, [][3]int64{{1, 2, 8 << 20}, {0, 2, 2 << 20}})
	net.DisconnectLink(topo.TrunkLinks(topo.Spines()[0], topo.LeafOf(1))[0])
	a := NewAnalytical(topo, net, wire4k{}, dm)

	wForced := float64(wire4k{}.WireBytesFor(8 << 20))
	wFlex := float64(wire4k{}.WireBytesFor(2 << 20))
	ports := a.PortLoad(2)
	if math.Abs(ports[1]-wForced) > 1e-6 || math.Abs(ports[0]-wFlex) > 1e-6 {
		t.Fatalf("binding subset not honoured: %v, want [%v %v]", ports, wFlex, wForced)
	}
}
