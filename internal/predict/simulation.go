package predict

import (
	"fmt"

	"flowpulse/internal/telemetry"
)

// Simulation is §5.2's highest-fidelity model: the expected per-port
// load is taken from a reference simulation of the network that
// includes every *known* fault but no silent ones. The reference run
// captures everything the analytical model approximates away —
// adaptive spraying dynamics, transport overheads and retransmission
// noise, jitter interactions.
//
// This package only averages the reference run's telemetry windows;
// producing them (cloning the network and re-running the workload) is
// the job of core.ReferenceRun, mirroring the paper's "significant
// time and computation resources must be spent running the simulation
// before every training job".
type Simulation struct {
	ports   [][]float64
	senders [][][]float64
	have    []bool

	// Per-iteration reference windows, keyed by leaf ordinal then
	// iteration. Adaptive spray can settle into different per-spine
	// splits on different iterations; the average erases that, the
	// iteration-indexed window does not.
	iterPorts   map[iterKey][]float64
	iterSenders map[iterKey][][]float64
}

type iterKey struct {
	leaf int
	iter uint32
}

// NewSimulation averages reference-run windows into a predictor.
// Windows from the same leaf are averaged element-wise; every leaf
// that appears must contribute at least one window. Each window is
// also kept under its iteration number, so consumers that know which
// iteration they are checking (IterPredictor) get the exact reference
// window rather than the cross-iteration mean.
func NewSimulation(nLeaves int, windows []*telemetry.Window) (*Simulation, error) {
	if len(windows) == 0 {
		return nil, fmt.Errorf("predict: no reference windows")
	}
	s := &Simulation{
		ports:       make([][]float64, nLeaves),
		senders:     make([][][]float64, nLeaves),
		have:        make([]bool, nLeaves),
		iterPorts:   make(map[iterKey][]float64),
		iterSenders: make(map[iterKey][][]float64),
	}
	counts := make([]int, nLeaves)
	for _, w := range windows {
		lo := w.LeafOrdinal
		if lo < 0 || lo >= nLeaves {
			return nil, fmt.Errorf("predict: window from leaf ordinal %d outside [0,%d)", lo, nLeaves)
		}
		key := iterKey{lo, w.Iter}
		ip := make([]float64, len(w.PortBytes))
		for u, b := range w.PortBytes {
			ip[u] = float64(b)
		}
		is := make([][]float64, len(w.SenderBytes))
		for u := range w.SenderBytes {
			is[u] = make([]float64, len(w.SenderBytes[u]))
			for l, b := range w.SenderBytes[u] {
				is[u][l] = float64(b)
			}
		}
		s.iterPorts[key] = ip
		s.iterSenders[key] = is
		if s.ports[lo] == nil {
			s.ports[lo] = make([]float64, len(w.PortBytes))
			s.senders[lo] = make([][]float64, len(w.SenderBytes))
			for u := range s.senders[lo] {
				s.senders[lo][u] = make([]float64, len(w.SenderBytes[u]))
			}
		}
		for u, b := range w.PortBytes {
			s.ports[lo][u] += float64(b)
		}
		for u := range w.SenderBytes {
			for l, b := range w.SenderBytes[u] {
				s.senders[lo][u][l] += float64(b)
			}
		}
		counts[lo]++
		s.have[lo] = true
	}
	for lo := range s.ports {
		if counts[lo] == 0 {
			continue
		}
		inv := 1 / float64(counts[lo])
		for u := range s.ports[lo] {
			s.ports[lo][u] *= inv
			for l := range s.senders[lo][u] {
				s.senders[lo][u][l] *= inv
			}
		}
	}
	return s, nil
}

// Name implements Predictor.
func (s *Simulation) Name() string { return "simulation" }

// Rebaseline implements Rebaseliner. The reference run was recorded on
// the pre-quarantine fabric, so after routing changes BOTH views of it
// are stale: the cross-iteration averages and the per-iteration
// windows IterPredictor serves (the latter used to survive a
// quarantine untouched and keep feeding the detector pre-quarantine
// spray splits). A reference run cannot be re-recorded mid-job, so the
// model goes honestly blind instead — every leaf reports not-Ready and
// the iteration-indexed windows are dropped — mirroring the learned
// model's warm-up blindness rather than predicting a fabric that no
// longer exists.
func (s *Simulation) Rebaseline() {
	for lo := range s.have {
		s.have[lo] = false
	}
	clear(s.iterPorts)
	clear(s.iterSenders)
}

// Ready implements Predictor.
func (s *Simulation) Ready(leafOrdinal int) bool { return s.have[leafOrdinal] }

// PortLoad implements Predictor.
func (s *Simulation) PortLoad(leafOrdinal int) []float64 { return s.ports[leafOrdinal] }

// SenderLoad implements Predictor.
func (s *Simulation) SenderLoad(leafOrdinal int) [][]float64 { return s.senders[leafOrdinal] }

// PortLoadAt implements IterPredictor: the reference window for the
// exact iteration when one exists, else the cross-iteration average.
func (s *Simulation) PortLoadAt(leafOrdinal int, iter uint32) []float64 {
	if p, ok := s.iterPorts[iterKey{leafOrdinal, iter}]; ok {
		return p
	}
	return s.ports[leafOrdinal]
}

// SenderLoadAt implements IterPredictor.
func (s *Simulation) SenderLoadAt(leafOrdinal int, iter uint32) [][]float64 {
	if p, ok := s.iterSenders[iterKey{leafOrdinal, iter}]; ok {
		return p
	}
	return s.senders[leafOrdinal]
}
