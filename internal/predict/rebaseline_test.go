package predict

import (
	"testing"

	"flowpulse/internal/telemetry"
)

// refWindows builds two leaves' reference windows over two iterations
// with per-iteration spray splits that differ from their average.
func refWindows() []*telemetry.Window {
	w := func(leaf int, iter uint32, ports []int64) *telemetry.Window {
		senders := make([][]int64, len(ports))
		for u := range senders {
			senders[u] = []int64{ports[u], 0}
		}
		return &telemetry.Window{LeafOrdinal: leaf, Iter: iter, PortBytes: ports, SenderBytes: senders}
	}
	return []*telemetry.Window{
		w(0, 1, []int64{100, 300}),
		w(0, 2, []int64{300, 100}),
		w(1, 1, []int64{200, 200}),
		w(1, 2, []int64{200, 200}),
	}
}

// TestSimulationRebaselineResetsIterWindows is the regression test for
// the quarantine-rebaseline gap: System.Rebaseline used to reset the
// learned model but leave the simulation model's per-iteration
// reference windows (the IterPredictor path) serving pre-quarantine
// spray splits. Both must go through the one Rebaseline path.
func TestSimulationRebaselineResetsIterWindows(t *testing.T) {
	s, err := NewSimulation(2, refWindows())
	if err != nil {
		t.Fatal(err)
	}
	var _ Rebaseliner = s // the one rebaseline path must reach it
	var _ IterPredictor = s

	if got := s.PortLoadAt(0, 1); got[0] != 100 || got[1] != 300 {
		t.Fatalf("pre-rebaseline iteration window = %v, want the exact reference split", got)
	}
	if !s.Ready(0) || !s.Ready(1) {
		t.Fatal("reference-backed leaves must start Ready")
	}

	s.Rebaseline()

	// The reference run no longer describes the (re-routed) fabric:
	// every leaf must go blind rather than keep serving stale windows.
	for lo := 0; lo < 2; lo++ {
		if s.Ready(lo) {
			t.Fatalf("leaf %d still Ready after Rebaseline — stale reference windows would feed the detector", lo)
		}
	}
	// And the iteration-exact view must be gone too, not just the
	// averages' Ready bit.
	if got := s.PortLoadAt(0, 1); got != nil && len(got) == 2 && got[0] == 100 && got[1] == 300 {
		t.Fatalf("PortLoadAt still serves the pre-quarantine per-iteration window %v after Rebaseline", got)
	}
	if got := s.SenderLoadAt(0, 2); got != nil && len(got) == 2 && len(got[0]) == 2 && got[0][0] == 300 {
		t.Fatalf("SenderLoadAt still serves the pre-quarantine per-iteration window after Rebaseline")
	}
}
