package predict

import (
	"math"

	"flowpulse/internal/telemetry"
)

// LearnedConfig tunes the learned baseline model.
type LearnedConfig struct {
	// Warmup is how many initial windows per leaf form the baseline.
	// Defaults to 3.
	Warmup int
	// RebaselineAfter is how many consecutive "healthier" windows
	// trigger baseline replacement. Defaults to 3.
	RebaselineAfter int
	// CVImprovement is the relative drop in the coefficient of
	// variation (across ports) that counts as "healthier". Defaults to
	// 0.25, i.e. the spread must shrink by a quarter.
	CVImprovement float64
	// TotalTolerance bounds the relative difference in total volume
	// for a window to be rebaseline-eligible (a different collective
	// size is a workload change, not a healed fault). Defaults to 0.05.
	TotalTolerance float64
}

func (c *LearnedConfig) setDefaults() {
	if c.Warmup == 0 {
		c.Warmup = 3
	}
	if c.RebaselineAfter == 0 {
		c.RebaselineAfter = 3
	}
	if c.CVImprovement == 0 {
		c.CVImprovement = 0.25
	}
	if c.TotalTolerance == 0 {
		c.TotalTolerance = 0.05
	}
}

// Learned is §5.2's measurement-based model: the expected load on each
// port is simply the average of the first Warmup iterations. Its
// caveat — and Fig. 3's subject — is a transient fault present during
// warm-up: when the fault heals, load re-balances more evenly, and the
// model replaces its baseline with the healthier measurement instead
// of flagging the recovery as a fault forever.
type Learned struct {
	cfg   LearnedConfig
	leafs []learnedLeaf

	// Rebaselines counts baseline replacements (Fig 3 telemetry).
	Rebaselines int
	// ForcedRebaselines counts external Rebaseline() calls (the
	// remediation loop's re-baseline after quarantine/re-admission).
	ForcedRebaselines int
}

type learnedLeaf struct {
	ready   bool
	ports   []float64
	senders [][]float64
	baseCV  float64
	baseTot float64

	warmup []*telemetry.Window

	// Candidate healthier windows seen in a row.
	healthier []*telemetry.Window
}

// NewLearned builds an empty model for nLeaves leaves; feed it every
// closed window via Observe.
func NewLearned(nLeaves int, cfg LearnedConfig) *Learned {
	cfg.setDefaults()
	return &Learned{cfg: cfg, leafs: make([]learnedLeaf, nLeaves)}
}

// Observe ingests one closed window. The caller must deliver windows
// in iteration order per leaf.
func (l *Learned) Observe(w *telemetry.Window) {
	st := &l.leafs[w.LeafOrdinal]
	if !st.ready {
		st.warmup = append(st.warmup, w.Clone())
		if len(st.warmup) >= l.cfg.Warmup {
			l.adopt(st, st.warmup)
			st.warmup = nil
		}
		return
	}

	cv, tot := portCV(w.PortBytes)
	healthier := cv < st.baseCV*(1-l.cfg.CVImprovement) &&
		math.Abs(tot-st.baseTot) <= l.cfg.TotalTolerance*st.baseTot
	if !healthier {
		st.healthier = st.healthier[:0]
		return
	}
	st.healthier = append(st.healthier, w.Clone())
	if len(st.healthier) >= l.cfg.RebaselineAfter {
		l.adopt(st, st.healthier)
		st.healthier = nil
		l.Rebaselines++
	}
}

// adopt replaces a leaf's baseline with the element-wise mean of the
// given windows.
func (l *Learned) adopt(st *learnedLeaf, ws []*telemetry.Window) {
	n := len(ws)
	st.ports = make([]float64, len(ws[0].PortBytes))
	st.senders = make([][]float64, len(ws[0].SenderBytes))
	for u := range st.senders {
		st.senders[u] = make([]float64, len(ws[0].SenderBytes[u]))
	}
	for _, w := range ws {
		for u, b := range w.PortBytes {
			st.ports[u] += float64(b) / float64(n)
		}
		for u := range w.SenderBytes {
			for s, b := range w.SenderBytes[u] {
				st.senders[u][s] += float64(b) / float64(n)
			}
		}
	}
	st.baseCV, st.baseTot = portCVF(st.ports)
	st.ready = true
}

func portCV(bytes []int64) (cv, total float64) {
	f := make([]float64, len(bytes))
	for i, b := range bytes {
		f[i] = float64(b)
	}
	return portCVF(f)
}

// portCVF returns the coefficient of variation across ports and the
// total volume.
func portCVF(f []float64) (cv, total float64) {
	if len(f) == 0 {
		return 0, 0
	}
	for _, v := range f {
		total += v
	}
	mean := total / float64(len(f))
	if mean == 0 {
		return 0, 0
	}
	var ss float64
	for _, v := range f {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss/float64(len(f))) / mean, total
}

// Rebaseline implements Rebaseliner: it discards every leaf's baseline
// and returns the model to warm-up, so the next Warmup windows —
// measured under the *new* routing state — become the baseline. While
// warming up the model reports not-Ready and the detector skips its
// windows, which is exactly the hysteresis the remediation loop wants:
// no alerts fire off windows that straddle a quarantine.
func (l *Learned) Rebaseline() {
	for i := range l.leafs {
		l.leafs[i] = learnedLeaf{}
	}
	l.ForcedRebaselines++
}

// Name implements Predictor.
func (l *Learned) Name() string { return "learned" }

// Ready implements Predictor.
func (l *Learned) Ready(leafOrdinal int) bool { return l.leafs[leafOrdinal].ready }

// PortLoad implements Predictor.
func (l *Learned) PortLoad(leafOrdinal int) []float64 { return l.leafs[leafOrdinal].ports }

// SenderLoad implements Predictor.
func (l *Learned) SenderLoad(leafOrdinal int) [][]float64 { return l.leafs[leafOrdinal].senders }

// BaselineCV exposes a leaf's baseline imbalance (diagnostics and Fig 3
// reporting).
func (l *Learned) BaselineCV(leafOrdinal int) float64 { return l.leafs[leafOrdinal].baseCV }
