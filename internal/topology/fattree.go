package topology

import (
	"fmt"

	"flowpulse/internal/sim"
)

// FatTreeConfig describes a non-blocking two-level leaf/spine fabric —
// the paper's evaluation topology (§6: 32 leaves, 16 spines, one host
// per leaf).
type FatTreeConfig struct {
	// Leaves is the number of leaf switches.
	Leaves int
	// Spines is the number of spine switches. For a switch of radix R
	// with R/2 host-facing ports, a non-blocking fabric uses R/2
	// spines; the paper's radix sweep varies this.
	Spines int
	// HostsPerLeaf is the number of hosts under each leaf. The paper's
	// evaluation uses 1.
	HostsPerLeaf int
	// Trunk is the number of parallel links between each leaf-spine
	// pair (§7 "Parallel Links"). Defaults to 1.
	Trunk int
	// LinkRateBPS is the leaf-spine link rate. Defaults to 400 Gb/s.
	LinkRateBPS int64
	// HostRateBPS is the host-leaf link rate. Defaults to LinkRateBPS.
	HostRateBPS int64
	// Propagation is the one-way propagation delay of every link.
	// Defaults to 200 ns.
	Propagation sim.Duration
}

// Radix returns the implied leaf switch radix: host ports plus uplink
// ports.
func (c FatTreeConfig) Radix() int {
	return c.HostsPerLeaf + c.Spines*c.Trunk
}

func (c *FatTreeConfig) setDefaults() {
	if c.Trunk == 0 {
		c.Trunk = 1
	}
	if c.LinkRateBPS == 0 {
		c.LinkRateBPS = 400e9
	}
	if c.HostRateBPS == 0 {
		c.HostRateBPS = c.LinkRateBPS
	}
	if c.Propagation == 0 {
		c.Propagation = 200 * sim.Nanosecond
	}
	if c.HostsPerLeaf == 0 {
		c.HostsPerLeaf = 1
	}
}

func (c FatTreeConfig) validate() error {
	if c.Leaves < 2 {
		return fmt.Errorf("topology: need at least 2 leaves, got %d", c.Leaves)
	}
	if c.Spines < 1 {
		return fmt.Errorf("topology: need at least 1 spine, got %d", c.Spines)
	}
	if c.HostsPerLeaf < 1 || c.Trunk < 1 {
		return fmt.Errorf("topology: hosts per leaf and trunk must be positive")
	}
	return nil
}

// PaperFatTree returns the paper's default evaluation fabric: 32
// leaves, 16 spines, one host per leaf.
func PaperFatTree() *Topology {
	t, err := NewFatTree(FatTreeConfig{Leaves: 32, Spines: 16})
	if err != nil {
		panic(err) // static config, cannot fail
	}
	return t
}

// NewFatTree builds a two-level fat tree.
//
// Port layout on a leaf: ports [0, HostsPerLeaf) face hosts in host
// order; port HostsPerLeaf + s*Trunk + k is trunk link k to spine
// ordinal s. Port layout on a spine: port l*Trunk + k is trunk link k
// to leaf ordinal l. This fixed layout lets the fabric and telemetry
// layers translate between port indexes and (spine, trunk) pairs
// without lookups.
func NewFatTree(cfg FatTreeConfig) (*Topology, error) {
	cfg.setDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}

	t := &Topology{Levels: 2, Trunk: cfg.Trunk}

	for l := 0; l < cfg.Leaves; l++ {
		id := SwitchID(len(t.Switches))
		t.Switches = append(t.Switches, SwitchDesc{ID: id, Kind: Leaf})
		t.leaves = append(t.leaves, id)
	}
	for s := 0; s < cfg.Spines; s++ {
		id := SwitchID(len(t.Switches))
		t.Switches = append(t.Switches, SwitchDesc{ID: id, Kind: Spine})
		t.spines = append(t.spines, id)
	}

	// Hosts and host-leaf links.
	for l, leaf := range t.leaves {
		for h := 0; h < cfg.HostsPerLeaf; h++ {
			hid := HostID(len(t.Hosts))
			link := t.addLink(
				Endpoint{Kind: HostEnd, Host: hid},
				Endpoint{Kind: SwitchEnd, Switch: leaf, Port: h},
				cfg.HostRateBPS, cfg.Propagation,
			)
			t.Hosts = append(t.Hosts, HostDesc{ID: hid, Leaf: leaf, LeafPort: h, Link: link})
		}
		_ = l
	}

	// Leaf-spine trunks.
	for li, leaf := range t.leaves {
		for si, spine := range t.spines {
			for k := 0; k < cfg.Trunk; k++ {
				link := t.addLink(
					Endpoint{Kind: SwitchEnd, Switch: leaf, Port: cfg.HostsPerLeaf + si*cfg.Trunk + k},
					Endpoint{Kind: SwitchEnd, Switch: spine, Port: li*cfg.Trunk + k},
					cfg.LinkRateBPS, cfg.Propagation,
				)
				t.recordTrunk(leaf, spine, link)
			}
		}
	}

	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("topology: built invalid fat tree: %w", err)
	}
	return t, nil
}

// LeafUpPort returns the leaf port index for the given spine ordinal
// and trunk index.
func (t *Topology) LeafUpPort(leaf SwitchID, spineOrdinal, trunk int) int {
	hosts := len(t.HostsOf(leaf))
	return hosts + spineOrdinal*t.Trunk + trunk
}

// SpineOrdinalOfLeafPort inverts LeafUpPort: given a leaf uplink port
// index it returns (spine ordinal, trunk index). It returns (-1, -1)
// for host-facing ports.
func (t *Topology) SpineOrdinalOfLeafPort(leaf SwitchID, port int) (spineOrdinal, trunk int) {
	hosts := len(t.HostsOf(leaf))
	if port < hosts {
		return -1, -1
	}
	up := port - hosts
	return up / t.Trunk, up % t.Trunk
}

// SpineDownPort returns the spine port index for the given leaf
// ordinal and trunk index (two-level fabrics).
func (t *Topology) SpineDownPort(leafOrdinal, trunk int) int {
	return leafOrdinal*t.Trunk + trunk
}

// LeafOrdinal returns the position of a leaf in Leaves(), or -1.
func (t *Topology) LeafOrdinal(leaf SwitchID) int {
	for i, l := range t.leaves {
		if l == leaf {
			return i
		}
	}
	return -1
}

// SpineOrdinal returns the position of a spine in Spines(), or -1.
func (t *Topology) SpineOrdinal(spine SwitchID) int {
	for i, s := range t.spines {
		if s == spine {
			return i
		}
	}
	return -1
}
