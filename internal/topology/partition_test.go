package topology

import (
	"testing"

	"flowpulse/internal/sim"
)

func TestPartitionFatTree(t *testing.T) {
	topo, err := NewFatTree(FatTreeConfig{Leaves: 4, Spines: 2, HostsPerLeaf: 3})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPartition(topo)
	if want := len(topo.Switches) + 1; p.NumDomains != want {
		t.Fatalf("NumDomains = %d, want %d", p.NumDomains, want)
	}
	seen := map[int]bool{0: true}
	for s := range topo.Switches {
		d := p.DomainOfSwitch[s]
		if d <= 0 || d >= p.NumDomains {
			t.Fatalf("switch %d in domain %d, out of range", s, d)
		}
		if seen[d] {
			t.Fatalf("domain %d assigned to two switches", d)
		}
		seen[d] = true
	}
	for h := range topo.Hosts {
		if got, want := p.DomainOfHost[h], p.DomainOfSwitch[topo.Hosts[h].Leaf]; got != want {
			t.Fatalf("host %d in domain %d, leaf in %d", h, got, want)
		}
	}
	if p.Lookahead != 200*sim.Nanosecond {
		t.Fatalf("Lookahead = %v, want default 200ns", p.Lookahead)
	}
}

func TestPartitionClos3(t *testing.T) {
	topo, err := NewClos3(Clos3Config{Pods: 2, LeavesPerPod: 2, SpinesPerPod: 2, CoresPerGroup: 2, HostsPerLeaf: 2})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPartition(topo)
	if want := len(topo.Switches) + 1; p.NumDomains != want {
		t.Fatalf("NumDomains = %d, want %d", p.NumDomains, want)
	}
	cross := 0
	for i := range topo.Links {
		l := &topo.Links[i]
		if p.CrossDomain(l) {
			cross++
			if l.A.Kind != SwitchEnd || l.B.Kind != SwitchEnd {
				t.Fatalf("host link %d marked cross-domain", l.ID)
			}
		} else if l.A.Kind == SwitchEnd && l.B.Kind == SwitchEnd {
			t.Fatalf("switch-switch link %d not cross-domain", l.ID)
		}
	}
	if cross == 0 {
		t.Fatal("no cross-domain links in a 3-level Clos")
	}
	if p.Lookahead <= 0 {
		t.Fatalf("Lookahead = %v, want positive", p.Lookahead)
	}
}

func TestPartitionLookaheadIsMinSwitchLinkDelay(t *testing.T) {
	topo, err := NewFatTree(FatTreeConfig{Leaves: 2, Spines: 2, HostsPerLeaf: 1, Propagation: 750 * sim.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPartition(topo)
	if p.Lookahead != 750*sim.Nanosecond {
		t.Fatalf("Lookahead = %v, want 750ns", p.Lookahead)
	}
}
