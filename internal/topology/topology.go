// Package topology builds and queries the static structure of the
// networks FlowPulse runs on: non-blocking two-level leaf/spine fat
// trees (the paper's evaluation topology), three-level Clos fabrics
// (the paper's §7 extension), and parallel-link trunks between switch
// pairs (§7 "Parallel Links").
//
// The package describes only wiring. Dynamic state — administratively
// disabled links, silent faults, queue occupancy — lives in
// internal/fabric and internal/fault.
package topology

import (
	"fmt"

	"flowpulse/internal/sim"
)

// HostID identifies an end host (one NIC, one GPU in the paper's
// workload model).
type HostID int

// SwitchID identifies a switch across all levels.
type SwitchID int

// LinkID identifies a bidirectional link.
type LinkID int

// SwitchKind is the level a switch occupies.
type SwitchKind uint8

const (
	// Leaf switches connect hosts to the fabric.
	Leaf SwitchKind = iota
	// Spine switches interconnect leaves (level 2).
	Spine
	// Core switches interconnect pods (level 3).
	Core
)

// String returns the lower-case level name.
func (k SwitchKind) String() string {
	switch k {
	case Leaf:
		return "leaf"
	case Spine:
		return "spine"
	case Core:
		return "core"
	}
	return fmt.Sprintf("SwitchKind(%d)", uint8(k))
}

// EndpointKind distinguishes host and switch link endpoints.
type EndpointKind uint8

const (
	// HostEnd is a host-side endpoint.
	HostEnd EndpointKind = iota
	// SwitchEnd is a switch-side endpoint.
	SwitchEnd
)

// Endpoint is one side of a link: either a host NIC or a numbered port
// on a switch.
type Endpoint struct {
	Kind   EndpointKind
	Host   HostID   // valid when Kind == HostEnd
	Switch SwitchID // valid when Kind == SwitchEnd
	Port   int      // port index on the switch; 0 for hosts
}

// String formats the endpoint for diagnostics.
func (e Endpoint) String() string {
	if e.Kind == HostEnd {
		return fmt.Sprintf("host%d", e.Host)
	}
	return fmt.Sprintf("sw%d.p%d", e.Switch, e.Port)
}

// Link is a full-duplex cable between two endpoints.
type Link struct {
	ID          LinkID
	A, B        Endpoint
	RateBPS     int64
	Propagation sim.Duration
}

// Other returns the endpoint opposite to the given switch. It panics
// if the switch is not attached to the link.
func (l *Link) Other(sw SwitchID) Endpoint {
	if l.A.Kind == SwitchEnd && l.A.Switch == sw {
		return l.B
	}
	if l.B.Kind == SwitchEnd && l.B.Switch == sw {
		return l.A
	}
	panic(fmt.Sprintf("topology: switch %d not on link %d", sw, l.ID))
}

// EndFor returns the endpoint on the given switch's side.
func (l *Link) EndFor(sw SwitchID) Endpoint {
	if l.A.Kind == SwitchEnd && l.A.Switch == sw {
		return l.A
	}
	if l.B.Kind == SwitchEnd && l.B.Switch == sw {
		return l.B
	}
	panic(fmt.Sprintf("topology: switch %d not on link %d", sw, l.ID))
}

// PortDesc describes one switch port: the link plugged into it and the
// peer on the far side. Link < 0 means the port is unused.
type PortDesc struct {
	Link LinkID
	Peer Endpoint
}

// SwitchDesc describes one switch.
type SwitchDesc struct {
	ID    SwitchID
	Kind  SwitchKind
	Pod   int // pod index for 3-level fabrics; 0 otherwise
	Ports []PortDesc
}

// HostDesc describes one host and its attachment point.
type HostDesc struct {
	ID       HostID
	Leaf     SwitchID
	LeafPort int    // port index on the leaf
	Link     LinkID // host-leaf link
}

// Topology is an immutable wiring description.
type Topology struct {
	Levels   int // 2 or 3
	Hosts    []HostDesc
	Switches []SwitchDesc
	Links    []Link

	leaves []SwitchID
	spines []SwitchID
	cores  []SwitchID

	// For 2-level (and intra-pod 3-level) fabrics:
	// uplink[leafOrdinal][spineOrdinal][trunk] = LinkID.
	Trunk  int
	uplink map[SwitchID]map[SwitchID][]LinkID
}

// Leaves returns the leaf switch IDs in construction order.
func (t *Topology) Leaves() []SwitchID { return t.leaves }

// Spines returns the spine switch IDs in construction order.
func (t *Topology) Spines() []SwitchID { return t.spines }

// Cores returns the core switch IDs in construction order (empty for
// two-level fabrics).
func (t *Topology) Cores() []SwitchID { return t.cores }

// Switch returns the descriptor for the given switch.
func (t *Topology) Switch(id SwitchID) *SwitchDesc { return &t.Switches[id] }

// Host returns the descriptor for the given host.
func (t *Topology) Host(id HostID) *HostDesc { return &t.Hosts[id] }

// Link returns the descriptor for the given link.
func (t *Topology) Link(id LinkID) *Link { return &t.Links[id] }

// LeafOf returns the leaf switch a host attaches to.
func (t *Topology) LeafOf(h HostID) SwitchID { return t.Hosts[h].Leaf }

// HostsOf returns the hosts attached to a leaf, in port order.
func (t *Topology) HostsOf(leaf SwitchID) []HostID {
	var hosts []HostID
	for _, h := range t.Hosts {
		if h.Leaf == leaf {
			hosts = append(hosts, h.ID)
		}
	}
	return hosts
}

// SwitchLinks returns the links terminating at a switch, in port
// order. Control-plane LSDBs are keyed this way: each switch
// advertises the state of exactly the links it terminates.
func (t *Topology) SwitchLinks(id SwitchID) []LinkID {
	ports := t.Switches[id].Ports
	links := make([]LinkID, len(ports))
	for i, pd := range ports {
		links[i] = pd.Link
	}
	return links
}

// TrunkLinks returns the parallel links between a leaf and a spine (or
// a spine and a core in three-level fabrics), in trunk order. It
// returns nil if the pair is not adjacent.
func (t *Topology) TrunkLinks(a, b SwitchID) []LinkID {
	if m := t.uplink[a]; m != nil {
		if ls, ok := m[b]; ok {
			return ls
		}
	}
	if m := t.uplink[b]; m != nil {
		if ls, ok := m[a]; ok {
			return ls
		}
	}
	return nil
}

// addLink appends a link and wires both endpoints' port tables.
func (t *Topology) addLink(a, b Endpoint, rate int64, prop sim.Duration) LinkID {
	id := LinkID(len(t.Links))
	t.Links = append(t.Links, Link{ID: id, A: a, B: b, RateBPS: rate, Propagation: prop})
	if a.Kind == SwitchEnd {
		t.setPort(a, id, b)
	}
	if b.Kind == SwitchEnd {
		t.setPort(b, id, a)
	}
	return id
}

func (t *Topology) setPort(at Endpoint, link LinkID, peer Endpoint) {
	sw := &t.Switches[at.Switch]
	for len(sw.Ports) <= at.Port {
		sw.Ports = append(sw.Ports, PortDesc{Link: -1})
	}
	if sw.Ports[at.Port].Link >= 0 {
		panic(fmt.Sprintf("topology: port %v wired twice", at))
	}
	sw.Ports[at.Port] = PortDesc{Link: link, Peer: peer}
}

func (t *Topology) recordTrunk(a, b SwitchID, link LinkID) {
	if t.uplink == nil {
		t.uplink = make(map[SwitchID]map[SwitchID][]LinkID)
	}
	m := t.uplink[a]
	if m == nil {
		m = make(map[SwitchID][]LinkID)
		t.uplink[a] = m
	}
	m[b] = append(m[b], link)
}

// Validate checks structural invariants: every port is wired to a
// live link, link endpoints agree with port tables, and every host has
// exactly one attachment.
func (t *Topology) Validate() error {
	for _, sw := range t.Switches {
		for p, pd := range sw.Ports {
			if pd.Link < 0 {
				return fmt.Errorf("switch %d port %d unwired", sw.ID, p)
			}
			l := t.Link(pd.Link)
			end := Endpoint{Kind: SwitchEnd, Switch: sw.ID, Port: p}
			if l.A != end && l.B != end {
				return fmt.Errorf("switch %d port %d: link %d does not reference it", sw.ID, p, pd.Link)
			}
		}
	}
	for _, h := range t.Hosts {
		l := t.Link(h.Link)
		he := Endpoint{Kind: HostEnd, Host: h.ID}
		if l.A != he && l.B != he {
			return fmt.Errorf("host %d: link %d does not reference it", h.ID, h.Link)
		}
	}
	return nil
}
