package topology

import (
	"fmt"

	"flowpulse/internal/sim"
)

// Clos3Config describes a three-level Clos fabric (pods of leaf/spine
// pairs joined by a core layer), the §7 "Network Topology" extension.
// Core switches are partitioned into groups, one group per spine
// ordinal: spine i of every pod connects to every core in group i, so
// pods are reachable from each other through same-ordinal spines.
type Clos3Config struct {
	// Pods is the number of pods.
	Pods int
	// LeavesPerPod is the number of leaf switches per pod.
	LeavesPerPod int
	// SpinesPerPod is the number of spine switches per pod.
	SpinesPerPod int
	// CoresPerGroup is the number of core switches each spine uplinks
	// to. Total cores = SpinesPerPod * CoresPerGroup.
	CoresPerGroup int
	// HostsPerLeaf is the number of hosts under each leaf. Defaults to 1.
	HostsPerLeaf int
	// Trunk is the number of parallel links per adjacent switch pair.
	// Defaults to 1.
	Trunk int
	// LinkRateBPS is the switch-switch link rate. Defaults to 400 Gb/s.
	LinkRateBPS int64
	// HostRateBPS is the host-leaf link rate. Defaults to LinkRateBPS.
	HostRateBPS int64
	// Propagation is the one-way propagation delay. Defaults to 500 ns.
	Propagation sim.Duration
}

func (c *Clos3Config) setDefaults() {
	if c.Trunk == 0 {
		c.Trunk = 1
	}
	if c.LinkRateBPS == 0 {
		c.LinkRateBPS = 400e9
	}
	if c.HostRateBPS == 0 {
		c.HostRateBPS = c.LinkRateBPS
	}
	if c.Propagation == 0 {
		c.Propagation = 200 * sim.Nanosecond
	}
	if c.HostsPerLeaf == 0 {
		c.HostsPerLeaf = 1
	}
}

func (c Clos3Config) validate() error {
	if c.Pods < 2 {
		return fmt.Errorf("topology: need at least 2 pods, got %d", c.Pods)
	}
	if c.LeavesPerPod < 1 || c.SpinesPerPod < 1 || c.CoresPerGroup < 1 {
		return fmt.Errorf("topology: pods need leaves, spines, and cores")
	}
	return nil
}

// NewClos3 builds a three-level Clos fabric.
//
// Port layout — leaf: as in two-level fabrics (hosts then in-pod
// spines). Spine: ports [0, L*Trunk) face the pod's leaves in leaf
// order; ports [L*Trunk, L*Trunk + CoresPerGroup*Trunk) face the
// spine's core group. Core: port p*Trunk + k faces pod p's
// same-ordinal spine.
func NewClos3(cfg Clos3Config) (*Topology, error) {
	cfg.setDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}

	t := &Topology{Levels: 3, Trunk: cfg.Trunk}

	// Allocate switches pod by pod so pod membership is contiguous.
	leafAt := make([][]SwitchID, cfg.Pods)  // [pod][leafOrdinal]
	spineAt := make([][]SwitchID, cfg.Pods) // [pod][spineOrdinal]
	for p := 0; p < cfg.Pods; p++ {
		for l := 0; l < cfg.LeavesPerPod; l++ {
			id := SwitchID(len(t.Switches))
			t.Switches = append(t.Switches, SwitchDesc{ID: id, Kind: Leaf, Pod: p})
			t.leaves = append(t.leaves, id)
			leafAt[p] = append(leafAt[p], id)
		}
		for s := 0; s < cfg.SpinesPerPod; s++ {
			id := SwitchID(len(t.Switches))
			t.Switches = append(t.Switches, SwitchDesc{ID: id, Kind: Spine, Pod: p})
			t.spines = append(t.spines, id)
			spineAt[p] = append(spineAt[p], id)
		}
	}
	nCores := cfg.SpinesPerPod * cfg.CoresPerGroup
	for c := 0; c < nCores; c++ {
		id := SwitchID(len(t.Switches))
		t.Switches = append(t.Switches, SwitchDesc{ID: id, Kind: Core})
		t.cores = append(t.cores, id)
	}

	// Hosts.
	for p := 0; p < cfg.Pods; p++ {
		for _, leaf := range leafAt[p] {
			for h := 0; h < cfg.HostsPerLeaf; h++ {
				hid := HostID(len(t.Hosts))
				link := t.addLink(
					Endpoint{Kind: HostEnd, Host: hid},
					Endpoint{Kind: SwitchEnd, Switch: leaf, Port: h},
					cfg.HostRateBPS, cfg.Propagation,
				)
				t.Hosts = append(t.Hosts, HostDesc{ID: hid, Leaf: leaf, LeafPort: h, Link: link})
			}
		}
	}

	// Leaf-spine trunks within each pod.
	for p := 0; p < cfg.Pods; p++ {
		for li, leaf := range leafAt[p] {
			for si, spine := range spineAt[p] {
				for k := 0; k < cfg.Trunk; k++ {
					link := t.addLink(
						Endpoint{Kind: SwitchEnd, Switch: leaf, Port: cfg.HostsPerLeaf + si*cfg.Trunk + k},
						Endpoint{Kind: SwitchEnd, Switch: spine, Port: li*cfg.Trunk + k},
						cfg.LinkRateBPS, cfg.Propagation,
					)
					t.recordTrunk(leaf, spine, link)
				}
			}
		}
	}

	// Spine-core trunks: spine ordinal s in every pod connects to cores
	// [s*CoresPerGroup, (s+1)*CoresPerGroup).
	spineUpBase := cfg.LeavesPerPod * cfg.Trunk
	for p := 0; p < cfg.Pods; p++ {
		for si, spine := range spineAt[p] {
			for g := 0; g < cfg.CoresPerGroup; g++ {
				core := t.cores[si*cfg.CoresPerGroup+g]
				for k := 0; k < cfg.Trunk; k++ {
					link := t.addLink(
						Endpoint{Kind: SwitchEnd, Switch: spine, Port: spineUpBase + g*cfg.Trunk + k},
						Endpoint{Kind: SwitchEnd, Switch: core, Port: p*cfg.Trunk + k},
						cfg.LinkRateBPS, cfg.Propagation,
					)
					t.recordTrunk(spine, core, link)
				}
			}
		}
	}

	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("topology: built invalid 3-level Clos: %w", err)
	}
	return t, nil
}

// PodOf returns the pod index of a switch (0 for cores and for
// two-level fabrics).
func (t *Topology) PodOf(sw SwitchID) int { return t.Switches[sw].Pod }

// SpinesOfPod returns the spine switches of a pod, in ordinal order.
func (t *Topology) SpinesOfPod(pod int) []SwitchID {
	var out []SwitchID
	for _, s := range t.spines {
		if t.Switches[s].Pod == pod {
			out = append(out, s)
		}
	}
	return out
}

// LeavesOfPod returns the leaf switches of a pod, in ordinal order.
func (t *Topology) LeavesOfPod(pod int) []SwitchID {
	var out []SwitchID
	for _, l := range t.leaves {
		if t.Switches[l].Pod == pod {
			out = append(out, l)
		}
	}
	return out
}
