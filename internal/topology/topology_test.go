package topology

import (
	"testing"
	"testing/quick"
)

func TestPaperFatTreeShape(t *testing.T) {
	top := PaperFatTree()
	if got := len(top.Leaves()); got != 32 {
		t.Errorf("leaves = %d, want 32", got)
	}
	if got := len(top.Spines()); got != 16 {
		t.Errorf("spines = %d, want 16", got)
	}
	if got := len(top.Hosts); got != 32 {
		t.Errorf("hosts = %d, want 32", got)
	}
	// 32 host links + 32*16 leaf-spine links.
	if got := len(top.Links); got != 32+32*16 {
		t.Errorf("links = %d, want %d", got, 32+32*16)
	}
	if err := top.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestFatTreePortLayout(t *testing.T) {
	top, err := NewFatTree(FatTreeConfig{Leaves: 4, Spines: 3, HostsPerLeaf: 2, Trunk: 2})
	if err != nil {
		t.Fatal(err)
	}
	leaf := top.Leaves()[1]
	// Leaf radix: 2 host ports + 3 spines * 2 trunks = 8.
	if got := len(top.Switch(leaf).Ports); got != 8 {
		t.Fatalf("leaf port count = %d, want 8", got)
	}
	// Uplink port for spine ordinal 2, trunk 1 must be 2 + 2*2 + 1 = 7.
	if got := top.LeafUpPort(leaf, 2, 1); got != 7 {
		t.Errorf("LeafUpPort = %d, want 7", got)
	}
	so, tr := top.SpineOrdinalOfLeafPort(leaf, 7)
	if so != 2 || tr != 1 {
		t.Errorf("SpineOrdinalOfLeafPort(7) = (%d,%d), want (2,1)", so, tr)
	}
	if so, tr := top.SpineOrdinalOfLeafPort(leaf, 1); so != -1 || tr != -1 {
		t.Errorf("host port misclassified as uplink: (%d,%d)", so, tr)
	}
	// Spine port for leaf ordinal 3, trunk 0 is 3*2 = 6.
	if got := top.SpineDownPort(3, 0); got != 6 {
		t.Errorf("SpineDownPort = %d, want 6", got)
	}
}

func TestFatTreeUpPortPeersAreSpines(t *testing.T) {
	top, err := NewFatTree(FatTreeConfig{Leaves: 8, Spines: 4, HostsPerLeaf: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, leaf := range top.Leaves() {
		sw := top.Switch(leaf)
		for p, pd := range sw.Ports {
			so, _ := top.SpineOrdinalOfLeafPort(leaf, p)
			if so < 0 {
				if pd.Peer.Kind != HostEnd {
					t.Fatalf("leaf %d port %d: expected host peer, got %v", leaf, p, pd.Peer)
				}
				continue
			}
			if pd.Peer.Kind != SwitchEnd || pd.Peer.Switch != top.Spines()[so] {
				t.Fatalf("leaf %d port %d: peer %v, want spine ordinal %d", leaf, p, pd.Peer, so)
			}
		}
	}
}

func TestFatTreeTrunkLinks(t *testing.T) {
	top, err := NewFatTree(FatTreeConfig{Leaves: 2, Spines: 2, Trunk: 3})
	if err != nil {
		t.Fatal(err)
	}
	leaf, spine := top.Leaves()[0], top.Spines()[1]
	links := top.TrunkLinks(leaf, spine)
	if len(links) != 3 {
		t.Fatalf("trunk links = %d, want 3", len(links))
	}
	// Symmetric lookup.
	if got := top.TrunkLinks(spine, leaf); len(got) != 3 {
		t.Fatalf("reverse trunk lookup = %d links, want 3", len(got))
	}
	// Non-adjacent pair.
	if got := top.TrunkLinks(top.Leaves()[0], top.Leaves()[1]); got != nil {
		t.Fatalf("leaf-leaf trunk lookup should be nil, got %v", got)
	}
}

func TestFatTreeConfigValidation(t *testing.T) {
	bad := []FatTreeConfig{
		{Leaves: 1, Spines: 2},
		{Leaves: 4, Spines: 0},
	}
	for _, cfg := range bad {
		if _, err := NewFatTree(cfg); err == nil {
			t.Errorf("NewFatTree(%+v) succeeded, want error", cfg)
		}
	}
}

func TestLinkOther(t *testing.T) {
	top := PaperFatTree()
	leaf, spine := top.Leaves()[0], top.Spines()[0]
	link := top.Link(top.TrunkLinks(leaf, spine)[0])
	if got := link.Other(leaf); got.Switch != spine {
		t.Errorf("Other(leaf) = %v, want spine %d", got, spine)
	}
	if got := link.EndFor(spine); got.Switch != spine {
		t.Errorf("EndFor(spine) = %v", got)
	}
}

func TestOrdinals(t *testing.T) {
	top := PaperFatTree()
	for i, l := range top.Leaves() {
		if got := top.LeafOrdinal(l); got != i {
			t.Fatalf("LeafOrdinal(%d) = %d, want %d", l, got, i)
		}
	}
	for i, s := range top.Spines() {
		if got := top.SpineOrdinal(s); got != i {
			t.Fatalf("SpineOrdinal(%d) = %d, want %d", s, got, i)
		}
	}
	if top.LeafOrdinal(top.Spines()[0]) != -1 {
		t.Fatal("spine misreported as leaf")
	}
}

func TestHostsOfLeaf(t *testing.T) {
	top, err := NewFatTree(FatTreeConfig{Leaves: 3, Spines: 2, HostsPerLeaf: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, leaf := range top.Leaves() {
		hosts := top.HostsOf(leaf)
		if len(hosts) != 4 {
			t.Fatalf("leaf %d has %d hosts, want 4", leaf, len(hosts))
		}
		for _, h := range hosts {
			if top.LeafOf(h) != leaf {
				t.Fatalf("host %d LeafOf mismatch", h)
			}
		}
	}
}

// Property: any valid random fat-tree config yields a topology that
// passes Validate, with the expected link count and per-switch radix.
func TestFatTreeInvariantsProperty(t *testing.T) {
	f := func(l, s, h, tr uint8) bool {
		cfg := FatTreeConfig{
			Leaves:       2 + int(l%14),
			Spines:       1 + int(s%8),
			HostsPerLeaf: 1 + int(h%4),
			Trunk:        1 + int(tr%3),
		}
		top, err := NewFatTree(cfg)
		if err != nil {
			return false
		}
		if top.Validate() != nil {
			return false
		}
		wantLinks := cfg.Leaves*cfg.HostsPerLeaf + cfg.Leaves*cfg.Spines*cfg.Trunk
		if len(top.Links) != wantLinks {
			return false
		}
		for _, leaf := range top.Leaves() {
			if len(top.Switch(leaf).Ports) != cfg.Radix() {
				return false
			}
		}
		for _, spine := range top.Spines() {
			if len(top.Switch(spine).Ports) != cfg.Leaves*cfg.Trunk {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestClos3Shape(t *testing.T) {
	top, err := NewClos3(Clos3Config{Pods: 4, LeavesPerPod: 4, SpinesPerPod: 2, CoresPerGroup: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(top.Leaves()); got != 16 {
		t.Errorf("leaves = %d, want 16", got)
	}
	if got := len(top.Spines()); got != 8 {
		t.Errorf("spines = %d, want 8", got)
	}
	if got := len(top.Cores()); got != 6 {
		t.Errorf("cores = %d, want 6", got)
	}
	if err := top.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Every core reaches every pod via exactly one spine.
	for _, core := range top.Cores() {
		pods := map[int]int{}
		for _, pd := range top.Switch(core).Ports {
			pods[top.PodOf(pd.Peer.Switch)]++
		}
		if len(pods) != 4 {
			t.Fatalf("core %d reaches %d pods, want 4", core, len(pods))
		}
	}
}

func TestClos3PodMembership(t *testing.T) {
	top, err := NewClos3(Clos3Config{Pods: 3, LeavesPerPod: 2, SpinesPerPod: 2, CoresPerGroup: 2})
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 3; p++ {
		if got := len(top.LeavesOfPod(p)); got != 2 {
			t.Errorf("pod %d leaves = %d, want 2", p, got)
		}
		if got := len(top.SpinesOfPod(p)); got != 2 {
			t.Errorf("pod %d spines = %d, want 2", p, got)
		}
		// Every leaf in the pod trunks to every spine in the pod.
		for _, leaf := range top.LeavesOfPod(p) {
			for _, spine := range top.SpinesOfPod(p) {
				if top.TrunkLinks(leaf, spine) == nil {
					t.Errorf("pod %d: leaf %d not trunked to spine %d", p, leaf, spine)
				}
			}
		}
	}
}

func TestClos3SpineCoreWiring(t *testing.T) {
	cfg := Clos3Config{Pods: 2, LeavesPerPod: 2, SpinesPerPod: 3, CoresPerGroup: 2}
	top, err := NewClos3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Spine ordinal s in each pod connects exactly to cores
	// [s*2, s*2+2).
	for p := 0; p < cfg.Pods; p++ {
		for si, spine := range top.SpinesOfPod(p) {
			for g := 0; g < cfg.CoresPerGroup; g++ {
				core := top.Cores()[si*cfg.CoresPerGroup+g]
				if top.TrunkLinks(spine, core) == nil {
					t.Errorf("pod %d spine ordinal %d missing core %d", p, si, core)
				}
			}
			// And to no cores outside its group.
			for ci, core := range top.Cores() {
				inGroup := ci/cfg.CoresPerGroup == si
				if (top.TrunkLinks(spine, core) != nil) != inGroup {
					t.Errorf("pod %d spine %d / core %d: group wiring wrong", p, spine, core)
				}
			}
		}
	}
}

func TestClos3ConfigValidation(t *testing.T) {
	if _, err := NewClos3(Clos3Config{Pods: 1, LeavesPerPod: 2, SpinesPerPod: 2, CoresPerGroup: 1}); err == nil {
		t.Error("single-pod Clos accepted")
	}
	if _, err := NewClos3(Clos3Config{Pods: 2, LeavesPerPod: 0, SpinesPerPod: 2, CoresPerGroup: 1}); err == nil {
		t.Error("zero-leaf pod accepted")
	}
}

func TestSwitchKindString(t *testing.T) {
	if Leaf.String() != "leaf" || Spine.String() != "spine" || Core.String() != "core" {
		t.Fatal("SwitchKind names wrong")
	}
}
