package topology

import (
	"fmt"

	"flowpulse/internal/sim"
)

// Partition maps a topology onto parallel simulation domains for the
// sharded engine (sim.Group). The decomposition rule is fixed, not
// heuristic: every switch roots its own domain, every host joins its
// leaf's domain, and domain 0 is reserved for the control plane
// (workload orchestration, monitoring pipelines, remediation). Because
// the partition depends only on the topology — never on the worker
// count — the logical event schedule, and therefore every simulation
// observable, is identical however many OS threads execute it.
//
// Host–leaf links are internal to a domain, so the synchronization
// lookahead is bounded only by switch–switch propagation delays: the
// minimum such delay is the earliest a packet leaving one domain can
// possibly affect another.
type Partition struct {
	// DomainOfSwitch maps SwitchID -> domain (1-based; 0 is control).
	DomainOfSwitch []int
	// DomainOfHost maps HostID -> its leaf's domain.
	DomainOfHost []int
	// NumDomains counts domains including the control domain.
	NumDomains int
	// Lookahead is the minimum cross-domain link latency: the safe
	// conservative synchronization window width.
	Lookahead sim.Duration
}

// NewPartition computes the domain decomposition of a topology. It
// panics if any switch–switch link has zero propagation delay: such a
// link would make the conservative lookahead zero and parallel
// execution impossible.
func NewPartition(t *Topology) *Partition {
	p := &Partition{
		DomainOfSwitch: make([]int, len(t.Switches)),
		DomainOfHost:   make([]int, len(t.Hosts)),
		NumDomains:     len(t.Switches) + 1,
	}
	for i := range t.Switches {
		p.DomainOfSwitch[i] = i + 1
	}
	for h := range t.Hosts {
		p.DomainOfHost[h] = p.DomainOfSwitch[t.Hosts[h].Leaf]
	}

	min := sim.Duration(-1)
	for i := range t.Links {
		l := &t.Links[i]
		if l.A.Kind != SwitchEnd || l.B.Kind != SwitchEnd {
			continue // host–leaf: intra-domain, does not bound the window
		}
		if l.Propagation <= 0 {
			panic(fmt.Sprintf("topology: switch-switch link %d has zero propagation; cannot partition", l.ID))
		}
		if min < 0 || l.Propagation < min {
			min = l.Propagation
		}
	}
	if min < 0 {
		// No switch-switch links (single-switch fabric): no
		// worker-to-worker traffic exists, so any positive window
		// works; fall back to the smallest link latency or 1 µs.
		min = sim.Microsecond
		for i := range t.Links {
			if t.Links[i].Propagation > 0 && t.Links[i].Propagation < min {
				min = t.Links[i].Propagation
			}
		}
	}
	p.Lookahead = min
	return p
}

// CrossDomain reports whether a link connects two distinct worker
// domains (i.e. is a switch–switch link under the fixed partition).
func (p *Partition) CrossDomain(l *Link) bool {
	if l.A.Kind != SwitchEnd || l.B.Kind != SwitchEnd {
		return false
	}
	return p.DomainOfSwitch[l.A.Switch] != p.DomainOfSwitch[l.B.Switch]
}
