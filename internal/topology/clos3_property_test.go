package topology

import (
	"testing"
	"testing/quick"
)

// Property: any valid random 3-level config builds a fabric that
// passes Validate, with the expected switch counts, full intra-pod
// bipartite wiring, and exactly one same-ordinal spine per (core, pod).
func TestClos3InvariantsProperty(t *testing.T) {
	f := func(p, l, s, c, tr uint8) bool {
		cfg := Clos3Config{
			Pods:          2 + int(p%4),
			LeavesPerPod:  1 + int(l%4),
			SpinesPerPod:  1 + int(s%3),
			CoresPerGroup: 1 + int(c%3),
			Trunk:         1 + int(tr%2),
		}
		topo, err := NewClos3(cfg)
		if err != nil {
			return false
		}
		if topo.Validate() != nil {
			return false
		}
		if len(topo.Leaves()) != cfg.Pods*cfg.LeavesPerPod ||
			len(topo.Spines()) != cfg.Pods*cfg.SpinesPerPod ||
			len(topo.Cores()) != cfg.SpinesPerPod*cfg.CoresPerGroup {
			return false
		}
		// Intra-pod bipartite completeness with the right trunk width.
		for pod := 0; pod < cfg.Pods; pod++ {
			for _, leaf := range topo.LeavesOfPod(pod) {
				for _, spine := range topo.SpinesOfPod(pod) {
					if len(topo.TrunkLinks(leaf, spine)) != cfg.Trunk {
						return false
					}
				}
			}
		}
		// Each core reaches exactly one spine per pod, the same ordinal
		// everywhere.
		for ci, core := range topo.Cores() {
			group := ci / cfg.CoresPerGroup
			for pod := 0; pod < cfg.Pods; pod++ {
				spine := topo.SpinesOfPod(pod)[group]
				if len(topo.TrunkLinks(core, spine)) != cfg.Trunk {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: total link count is hosts + intra-pod + spine-core wiring,
// exactly.
func TestClos3LinkCountProperty(t *testing.T) {
	f := func(p, l, s, c uint8) bool {
		cfg := Clos3Config{
			Pods:          2 + int(p%3),
			LeavesPerPod:  1 + int(l%3),
			SpinesPerPod:  1 + int(s%3),
			CoresPerGroup: 1 + int(c%3),
			HostsPerLeaf:  2,
		}
		topo, err := NewClos3(cfg)
		if err != nil {
			return false
		}
		hosts := cfg.Pods * cfg.LeavesPerPod * cfg.HostsPerLeaf
		intraPod := cfg.Pods * cfg.LeavesPerPod * cfg.SpinesPerPod
		spineCore := cfg.Pods * cfg.SpinesPerPod * cfg.CoresPerGroup
		return len(topo.Links) == hosts+intraPod+spineCore
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
