package topology

import "testing"

// Table-driven edge cases for the fat-tree builder: odd radixes, odd
// switch counts, single-host leaves, and trunked leaf-spine links.
// Each case checks the structural invariants the fabric and telemetry
// layers assume: element counts, the fixed port layout, and the
// port↔(spine, trunk) translation being a bijection.
func TestFatTreeEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		cfg  FatTreeConfig
	}{
		{"odd spines", FatTreeConfig{Leaves: 6, Spines: 3}},
		{"odd leaves odd spines", FatTreeConfig{Leaves: 5, Spines: 5}},
		{"single spine", FatTreeConfig{Leaves: 4, Spines: 1}},
		{"two leaves", FatTreeConfig{Leaves: 2, Spines: 2}},
		{"odd radix multi-host", FatTreeConfig{Leaves: 4, Spines: 3, HostsPerLeaf: 2}},
		{"trunked", FatTreeConfig{Leaves: 4, Spines: 2, Trunk: 2}},
		{"odd trunk", FatTreeConfig{Leaves: 3, Spines: 2, Trunk: 3}},
		{"trunked multi-host odd spines", FatTreeConfig{Leaves: 5, Spines: 3, HostsPerLeaf: 2, Trunk: 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			topo, err := NewFatTree(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg := tc.cfg
			cfg.setDefaults()

			if got := len(topo.Leaves()); got != cfg.Leaves {
				t.Errorf("leaves: %d, want %d", got, cfg.Leaves)
			}
			if got := len(topo.Spines()); got != cfg.Spines {
				t.Errorf("spines: %d, want %d", got, cfg.Spines)
			}
			if got := len(topo.Hosts); got != cfg.Leaves*cfg.HostsPerLeaf {
				t.Errorf("hosts: %d, want %d", got, cfg.Leaves*cfg.HostsPerLeaf)
			}
			wantLinks := cfg.Leaves*cfg.HostsPerLeaf + cfg.Leaves*cfg.Spines*cfg.Trunk
			if got := len(topo.Links); got != wantLinks {
				t.Errorf("links: %d, want %d", got, wantLinks)
			}

			for _, leaf := range topo.Leaves() {
				if got := len(topo.HostsOf(leaf)); got != cfg.HostsPerLeaf {
					t.Errorf("leaf %d: %d hosts, want %d", leaf, got, cfg.HostsPerLeaf)
				}
				// The port layout is a bijection: every (spine, trunk)
				// pair maps to a distinct port and back.
				seen := map[int]bool{}
				for so, spine := range topo.Spines() {
					if got := len(topo.TrunkLinks(leaf, spine)); got != cfg.Trunk {
						t.Errorf("leaf %d spine %d: trunk group size %d, want %d", leaf, spine, got, cfg.Trunk)
					}
					for k := 0; k < cfg.Trunk; k++ {
						port := topo.LeafUpPort(leaf, so, k)
						if port < cfg.HostsPerLeaf || seen[port] {
							t.Fatalf("leaf %d: port %d for spine %d trunk %d reused or in host range", leaf, port, so, k)
						}
						seen[port] = true
						gs, gk := topo.SpineOrdinalOfLeafPort(leaf, port)
						if gs != so || gk != k {
							t.Errorf("leaf %d port %d: round trip (%d,%d), want (%d,%d)", leaf, port, gs, gk, so, k)
						}
					}
				}
			}
		})
	}
}

// Table-driven edge cases for the 3-level Clos builder: odd pod
// counts, single-leaf pods, single-host leaves, odd core groups, and
// trunked spine-core links.
func TestClos3EdgeCases(t *testing.T) {
	cases := []struct {
		name string
		cfg  Clos3Config
	}{
		{"minimal", Clos3Config{Pods: 2, LeavesPerPod: 1, SpinesPerPod: 1, CoresPerGroup: 1}},
		{"odd pods", Clos3Config{Pods: 3, LeavesPerPod: 2, SpinesPerPod: 2, CoresPerGroup: 2}},
		{"odd core group", Clos3Config{Pods: 2, LeavesPerPod: 2, SpinesPerPod: 2, CoresPerGroup: 3}},
		{"single-leaf pods multi-host", Clos3Config{Pods: 3, LeavesPerPod: 1, SpinesPerPod: 2, CoresPerGroup: 2, HostsPerLeaf: 2}},
		{"trunked spine links", Clos3Config{Pods: 2, LeavesPerPod: 2, SpinesPerPod: 2, CoresPerGroup: 2, Trunk: 2}},
		{"odd everything", Clos3Config{Pods: 3, LeavesPerPod: 3, SpinesPerPod: 3, CoresPerGroup: 3, Trunk: 3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			topo, err := NewClos3(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg := tc.cfg
			cfg.setDefaults()

			nCores := cfg.SpinesPerPod * cfg.CoresPerGroup
			if got := len(topo.Cores()); got != nCores {
				t.Errorf("cores: %d, want %d", got, nCores)
			}
			if got := len(topo.Leaves()); got != cfg.Pods*cfg.LeavesPerPod {
				t.Errorf("leaves: %d, want %d", got, cfg.Pods*cfg.LeavesPerPod)
			}
			if got := len(topo.Spines()); got != cfg.Pods*cfg.SpinesPerPod {
				t.Errorf("spines: %d, want %d", got, cfg.Pods*cfg.SpinesPerPod)
			}
			wantLinks := cfg.Pods*cfg.LeavesPerPod*cfg.HostsPerLeaf +
				cfg.Pods*cfg.LeavesPerPod*cfg.SpinesPerPod*cfg.Trunk +
				cfg.Pods*cfg.SpinesPerPod*cfg.CoresPerGroup*cfg.Trunk
			if got := len(topo.Links); got != wantLinks {
				t.Errorf("links: %d, want %d", got, wantLinks)
			}

			for p := 0; p < cfg.Pods; p++ {
				leaves, spines := topo.LeavesOfPod(p), topo.SpinesOfPod(p)
				if len(leaves) != cfg.LeavesPerPod || len(spines) != cfg.SpinesPerPod {
					t.Fatalf("pod %d: %d leaves / %d spines, want %d / %d",
						p, len(leaves), len(spines), cfg.LeavesPerPod, cfg.SpinesPerPod)
				}
				for _, sw := range append(append([]SwitchID(nil), leaves...), spines...) {
					if topo.PodOf(sw) != p {
						t.Errorf("switch %d: pod %d, want %d", sw, topo.PodOf(sw), p)
					}
				}
				// In-pod leaf-spine trunks are complete bipartite.
				for _, leaf := range leaves {
					for _, spine := range spines {
						if got := len(topo.TrunkLinks(leaf, spine)); got != cfg.Trunk {
							t.Errorf("pod %d leaf %d spine %d: trunk size %d, want %d", p, leaf, spine, got, cfg.Trunk)
						}
					}
				}
				// Spine ordinal s reaches exactly its core group, with
				// Trunk parallel links to each member.
				for s, spine := range spines {
					for _, core := range topo.Cores() {
						want := 0
						ord := coreOrdinal(topo, core)
						if ord/cfg.CoresPerGroup == s {
							want = cfg.Trunk
						}
						if got := len(topo.TrunkLinks(spine, core)); got != want {
							t.Errorf("pod %d spine %d core %d: trunk size %d, want %d", p, spine, core, got, want)
						}
					}
				}
			}
		})
	}
}

func coreOrdinal(t *Topology, core SwitchID) int {
	for i, c := range t.Cores() {
		if c == core {
			return i
		}
	}
	return -1
}
