package localize

import (
	"testing"

	"flowpulse/internal/detect"
	"flowpulse/internal/telemetry"
	"flowpulse/internal/topology"
)

// The Fig. 4 scenario: leaves L1, L2, L3 (ordinals 1, 2, 3); L2
// receives from L1 and L3 through spine S1 (ordinal 1).
func fig4Topo(t *testing.T) *topology.Topology {
	t.Helper()
	topo, err := topology.NewFatTree(topology.FatTreeConfig{Leaves: 4, Spines: 4})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// fig4Window builds L2's window: per-uplink, per-sender bytes.
func fig4Window(topo *topology.Topology, senderBytesOnS1 map[int]int64) *telemetry.Window {
	w := &telemetry.Window{
		Leaf:        topo.Leaves()[2],
		LeafOrdinal: 2,
		Iter:        5,
		PortBytes:   make([]int64, 4),
		SenderBytes: make([][]int64, 4),
	}
	for u := range w.SenderBytes {
		w.SenderBytes[u] = make([]int64, 4)
	}
	for sender, b := range senderBytesOnS1 {
		w.SenderBytes[1][sender] = b
		w.PortBytes[1] += b
	}
	return w
}

// senderPred expects 1 MB from each of L1 and L3 on the S1 port.
func fig4Pred() [][]float64 {
	pred := make([][]float64, 4)
	for u := range pred {
		pred[u] = make([]float64, 4)
	}
	pred[1][1] = 1e6
	pred[1][3] = 1e6
	return pred
}

func alertOnS1(topo *topology.Topology) detect.Alert {
	return detect.Alert{Leaf: topo.Leaves()[2], LeafOrdinal: 2, Uplink: 1, Iter: 5}
}

func TestLocalizeRemoteLink(t *testing.T) {
	// L1's traffic through S1 is halved, L3's is intact: blame the
	// remote L1-S1 link (the paper's Fig. 4 conclusion).
	topo := fig4Topo(t)
	l := New(topo, 0.01, 1000)
	w := fig4Window(topo, map[int]int64{1: 500_000, 3: 1_000_000})
	v := l.Localize(alertOnS1(topo), w, fig4Pred())
	if v.Kind != RemoteLink {
		t.Fatalf("verdict = %v, want remote-link", v)
	}
	wantLink := topo.TrunkLinks(topo.Leaves()[1], topo.Spines()[1])[0]
	if len(v.Links) != 1 || v.Links[0] != wantLink {
		t.Fatalf("blamed links %v, want [%d]", v.Links, wantLink)
	}
	if len(v.AffectedSenders) != 1 || v.AffectedSenders[0] != 1 {
		t.Fatalf("affected = %v, want [1]", v.AffectedSenders)
	}
	if len(v.CleanSenders) != 1 || v.CleanSenders[0] != 3 {
		t.Fatalf("clean = %v, want [3]", v.CleanSenders)
	}
}

func TestLocalizeLocalLink(t *testing.T) {
	// Both senders equally depressed: the shared local S1-L2 link.
	topo := fig4Topo(t)
	l := New(topo, 0.01, 1000)
	w := fig4Window(topo, map[int]int64{1: 700_000, 3: 720_000})
	v := l.Localize(alertOnS1(topo), w, fig4Pred())
	if v.Kind != LocalLink {
		t.Fatalf("verdict = %v, want local-link", v)
	}
	wantLink := topo.TrunkLinks(topo.Spines()[1], topo.Leaves()[2])[0]
	if len(v.Links) != 1 || v.Links[0] != wantLink {
		t.Fatalf("blamed links %v, want [%d]", v.Links, wantLink)
	}
}

func TestLocalizeTotalRemoteOutage(t *testing.T) {
	// One sender completely dark, the other clean: remote link, and the
	// dead sender is detected via its zero volume.
	topo := fig4Topo(t)
	l := New(topo, 0.01, 1000)
	w := fig4Window(topo, map[int]int64{1: 0, 3: 1_000_000})
	v := l.Localize(alertOnS1(topo), w, fig4Pred())
	if v.Kind != RemoteLink || len(v.AffectedSenders) != 1 || v.AffectedSenders[0] != 1 {
		t.Fatalf("verdict: %v", v)
	}
}

func TestLocalizeMultipleRemoteLinks(t *testing.T) {
	// Two of four senders depressed (half — under the 60% local
	// fraction): both remote links are blamed.
	topo := fig4Topo(t)
	l := New(topo, 0.01, 1000)
	pred := fig4Pred()
	pred[1][0] = 1e6 // L0 also sends
	pred[1][2] = 1e6 // local host traffic arriving via spine (multi-host leaf)
	w := fig4Window(topo, map[int]int64{0: 900_000, 1: 900_000, 2: 1_000_000, 3: 1_000_000})
	v := l.Localize(alertOnS1(topo), w, pred)
	if v.Kind != RemoteLink || len(v.Links) != 2 {
		t.Fatalf("verdict: %v", v)
	}
}

func TestLocalizeSurplusIsNotAffected(t *testing.T) {
	// A sender 3% ABOVE prediction (retransmit spillover) must not be
	// blamed; the depressed sender is.
	topo := fig4Topo(t)
	l := New(topo, 0.01, 1000)
	w := fig4Window(topo, map[int]int64{1: 950_000, 3: 1_030_000})
	v := l.Localize(alertOnS1(topo), w, fig4Pred())
	if v.Kind != RemoteLink || len(v.AffectedSenders) != 1 || v.AffectedSenders[0] != 1 {
		t.Fatalf("verdict: %v", v)
	}
}

func TestLocalizeIndeterminateWhenNoExpectedTraffic(t *testing.T) {
	topo := fig4Topo(t)
	l := New(topo, 0.01, 1000)
	pred := make([][]float64, 4)
	for u := range pred {
		pred[u] = make([]float64, 4)
	}
	w := fig4Window(topo, map[int]int64{})
	v := l.Localize(alertOnS1(topo), w, pred)
	if v.Kind != Indeterminate {
		t.Fatalf("verdict: %v", v)
	}
}

func TestKindString(t *testing.T) {
	if LocalLink.String() != "local-link" || RemoteLink.String() != "remote-link" || Indeterminate.String() != "indeterminate" {
		t.Fatal("kind names wrong")
	}
}
