// Package localize implements §5.3's fault localization (Fig. 4):
// once a leaf detects reduced traffic on an ingress port, it compares
// the per-sender volumes on that port. If every sender is equally
// affected, the local link (this leaf ↔ the port's spine) is at fault;
// if only some senders are affected, the fault sits on the remote link
// between each affected sender's leaf and the spine — in a two-level
// fat tree, a sender's traffic can reach this port over exactly one
// path, so the inference is unambiguous.
package localize

import (
	"fmt"
	"math"

	"flowpulse/internal/detect"
	"flowpulse/internal/telemetry"
	"flowpulse/internal/topology"
)

// Kind classifies a localization verdict.
type Kind uint8

const (
	// Indeterminate means the port had too little expected traffic to
	// attribute the deficit.
	Indeterminate Kind = iota
	// LocalLink blames the link between the detecting leaf and the
	// port's spine.
	LocalLink
	// RemoteLink blames link(s) between sender leaves and the spine.
	RemoteLink
)

// String names the verdict kind.
func (k Kind) String() string {
	switch k {
	case LocalLink:
		return "local-link"
	case RemoteLink:
		return "remote-link"
	}
	return "indeterminate"
}

// Verdict is the outcome of localizing one alert.
type Verdict struct {
	Kind Kind
	// Links are the blamed cables (trunk groups are reported whole).
	Links []topology.LinkID
	// AffectedSenders lists the depressed senders' leaf ordinals.
	AffectedSenders []int
	// CleanSenders lists senders whose volume matched the model.
	CleanSenders []int
}

// String formats the verdict for operator logs.
func (v Verdict) String() string {
	return fmt.Sprintf("%s links=%v affected=%v clean=%v", v.Kind, v.Links, v.AffectedSenders, v.CleanSenders)
}

// Localizer resolves alerts to links.
type Localizer struct {
	topo *topology.Topology
	// Threshold for per-sender deviation; use the detector's.
	threshold float64
	// MinPredicted as in detect.Config.
	minPredicted float64
	// localFraction is the share of senders that must be affected for
	// a local-link verdict. The paper's rule is "all senders equally
	// affected"; a strict ALL is fragile against per-sender measurement
	// noise (a sender contributing few packets to a port can sit under
	// the cut by chance), so the default requires 60% — far above the
	// 1-of-N signature of any remote fault, far below the all-of-N of
	// a local one.
	localFraction float64
}

// New builds a localizer. threshold and minPredicted should match the
// detector's configuration.
func New(topo *topology.Topology, threshold, minPredicted float64) *Localizer {
	if threshold == 0 {
		threshold = 0.01
	}
	if minPredicted == 0 {
		minPredicted = 4160
	}
	return &Localizer{topo: topo, threshold: threshold, minPredicted: minPredicted, localFraction: 0.6}
}

// Localize attributes one alert using the window's per-sender volumes
// and the model's per-sender expectations for the same port.
func (l *Localizer) Localize(a detect.Alert, w *telemetry.Window, senderPred [][]float64) Verdict {
	obs := w.SenderBytes[a.Uplink]
	pred := senderPred[a.Uplink]

	// The per-sender cut adapts to the alert's magnitude: when the
	// port-level deviation is large, small per-sender wobbles (ACK
	// interleaving perturbs per-destination spray splits when a leaf
	// serves several flows, §5.1) must not implicate innocent senders.
	cut := l.threshold
	if adaptive := math.Abs(a.Deviation) / 2; adaptive > cut && !math.IsInf(adaptive, 0) {
		cut = adaptive
	}

	var affected, clean []int
	for s := range pred {
		dev, ok := detect.Deviation(float64(obs[s]), pred[s], l.minPredicted)
		if !ok {
			continue
		}
		// A deficit implicates the sender's path; a surplus is the
		// retransmission spillover of a fault elsewhere and is not
		// counted against the sender.
		if dev < -cut || math.IsInf(dev, 1) {
			affected = append(affected, s)
		} else {
			clean = append(clean, s)
		}
	}

	leaf := a.Leaf
	hostPorts := len(l.topo.HostsOf(leaf))
	spineOrd, _ := l.topo.SpineOrdinalOfLeafPort(leaf, a.Uplink+hostPorts)
	spine := l.topo.Spines()[spineOrd]

	frac := float64(len(affected)) / float64(len(affected)+len(clean))
	switch {
	case len(affected) == 0:
		return Verdict{Kind: Indeterminate}
	case frac >= l.localFraction:
		// (Nearly) every sender equally affected: the only shared
		// element is the local spine→leaf link.
		return Verdict{
			Kind:            LocalLink,
			Links:           append([]topology.LinkID(nil), l.topo.TrunkLinks(spine, leaf)...),
			AffectedSenders: affected,
			CleanSenders:    clean,
		}
	default:
		// Some senders unaffected: the local link is fine; blame each
		// affected sender's leaf↔spine link.
		v := Verdict{Kind: RemoteLink, AffectedSenders: affected, CleanSenders: clean}
		for _, s := range affected {
			senderLeaf := l.topo.Leaves()[s]
			v.Links = append(v.Links, l.topo.TrunkLinks(senderLeaf, spine)...)
		}
		return v
	}
}
