package collective

import (
	"math"
	"testing"

	"flowpulse/internal/fabric"
	"flowpulse/internal/sim"
	"flowpulse/internal/topology"
)

func TestTwoRankRing(t *testing.T) {
	r := newRig(t, 2, 2, 1, 20)
	c := &RingAllReduce{Group: []topology.HostID{0, 1}, BytesPerRank: 64 << 10}
	if c.Steps() != 2 {
		t.Fatalf("2-rank allreduce has %d steps, want 2", c.Steps())
	}
	res := runCollective(t, r, c, inputValues(2), nil)
	for rank := 0; rank < 2; rank++ {
		for ch := 0; ch < 2; ch++ {
			if math.Abs(res.Values[rank][ch]-chunkSum(2, ch)) > 1e-9 {
				t.Fatalf("2-rank reduce wrong at %d/%d", rank, ch)
			}
		}
	}
}

func TestUnevenChunkSizesEndToEnd(t *testing.T) {
	// 1 MiB + 3 bytes over 8 ranks: first 3 chunks one byte larger.
	r := newRig(t, 8, 4, 1, 21)
	c := &RingAllReduce{Group: allHosts(r.topo), BytesPerRank: (1 << 20) + 3}
	res := runCollective(t, r, c, inputValues(8), nil)
	for rank := 0; rank < 8; rank++ {
		for ch := 0; ch < 8; ch++ {
			if math.Abs(res.Values[rank][ch]-chunkSum(8, ch)) > 1e-9 {
				t.Fatalf("uneven-chunk reduce wrong at %d/%d", rank, ch)
			}
		}
	}
	// The per-message breakdown must conserve the aggregate demand.
	d := c.Demand()
	var msgs int64
	for i := range d.Msgs {
		for j := range d.Msgs[i] {
			for _, m := range d.Msgs[i][j] {
				msgs += m
			}
		}
	}
	if msgs != d.Total() {
		t.Fatalf("Msgs sum %d != Bytes total %d", msgs, d.Total())
	}
}

func TestSingleFlowCollective(t *testing.T) {
	r := newRig(t, 4, 4, 1, 22)
	sf := &SingleFlow{Src: 0, Dst: 3, Bytes: 512 << 10}
	var done sim.Time
	sf.Run(&RunContext{
		Stack:    r.stack,
		Engine:   r.eng,
		Tag:      fabric.FlowTag{Sentinel: true, Iter: 1},
		Priority: fabric.High,
		OnComplete: func(now sim.Time, res *Result) {
			done = now
			if res.MessagesSent != 1 {
				t.Errorf("messages = %d", res.MessagesSent)
			}
		},
	})
	r.eng.Run()
	if done == 0 {
		t.Fatal("single flow never completed")
	}
	d := sf.Demand()
	if d.Bytes[0][1] != 512<<10 || d.Total() != 512<<10 {
		t.Fatalf("single-flow demand wrong: %+v", d.Bytes)
	}
	if len(d.Msgs[0][1]) != 1 || d.Msgs[0][1][0] != 512<<10 {
		t.Fatalf("single-flow message list wrong: %v", d.Msgs[0][1])
	}
}

func TestSingleFlowWithJitterOffset(t *testing.T) {
	r := newRig(t, 2, 2, 1, 23)
	sf := &SingleFlow{Src: 0, Dst: 1, Bytes: 4096}
	var started sim.Time
	sf.Run(&RunContext{
		Stack:        r.stack,
		Engine:       r.eng,
		StartOffsets: []sim.Duration{7 * sim.Microsecond, 0},
		OnComplete:   func(now sim.Time, _ *Result) { started = now },
	})
	r.eng.Run()
	if started < sim.Time(7*sim.Microsecond) {
		t.Fatalf("offset ignored: completed at %v", started)
	}
}

func TestRingAllGatherDemandEqualsAllReduceHalf(t *testing.T) {
	group := make([]topology.HostID, 8)
	for i := range group {
		group[i] = topology.HostID(i)
	}
	ar := (&RingAllReduce{Group: group, BytesPerRank: 1 << 20}).Demand()
	rs := (&ReduceScatter{Group: group, BytesPerRank: 1 << 20}).Demand()
	ag := (&AllGather{Group: group, BytesPerRank: 1 << 20}).Demand()
	if rs.Total()+ag.Total() != ar.Total() {
		t.Fatalf("RS(%d) + AG(%d) != AR(%d)", rs.Total(), ag.Total(), ar.Total())
	}
}

func TestDemandMatrixHelpers(t *testing.T) {
	group := make([]topology.HostID, 4)
	for i := range group {
		group[i] = topology.HostID(i)
	}
	d := (&RingAllReduce{Group: group, BytesPerRank: 4096}).Demand()
	if d.N() != 4 {
		t.Fatalf("N = %d", d.N())
	}
	// Each rank receives only from its predecessor.
	for r := 0; r < 4; r++ {
		pred := (r + 3) % 4
		if d.ToHost(r) != d.Bytes[pred][r] {
			t.Fatalf("ToHost(%d) mismatch", r)
		}
	}
}
