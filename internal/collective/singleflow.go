package collective

import (
	"fmt"

	"flowpulse/internal/sim"
	"flowpulse/internal/topology"
	"flowpulse/internal/transport"
)

// SingleFlow is a degenerate "collective": one bulk message from Src
// to Dst per iteration. Fig 2 uses it to compare the analytical
// model's per-port prediction against the simulator for an isolated
// flow.
type SingleFlow struct {
	Src, Dst topology.HostID
	Bytes    int64
}

// Name implements Collective.
func (s *SingleFlow) Name() string { return "single-flow" }

// Demand implements Collective.
func (s *SingleFlow) Demand() *DemandMatrix {
	d := &DemandMatrix{
		Hosts: []topology.HostID{s.Src, s.Dst},
		Bytes: [][]int64{{0, s.Bytes}, {0, 0}},
		Msgs:  [][][]int64{{nil, {s.Bytes}}, {nil, nil}},
	}
	return d
}

// Run implements Collective.
func (s *SingleFlow) Run(ctx *RunContext) {
	if s.Bytes <= 0 {
		panic(fmt.Sprintf("collective: single flow of %d bytes", s.Bytes))
	}
	var off sim.Duration
	if ctx.StartOffsets != nil {
		off = ctx.StartOffsets[0]
	}
	ctx.scheduleStart(s.Src, off, func(sim.Time) {
		ctx.Stack.Send(&transport.Message{
			Src:      s.Src,
			Dst:      s.Dst,
			Bytes:    int(s.Bytes),
			Priority: ctx.Priority,
			Tag:      ctx.Tag,
			OnDelivered: func(now sim.Time, _ *transport.Message) {
				ctx.finish(s.Dst, now, func(now sim.Time) {
					if ctx.OnComplete != nil {
						ctx.OnComplete(now, &Result{FinishedAt: now, MessagesSent: 1})
					}
				})
			},
		})
	})
}
