// Package collective implements the communication patterns of
// data-parallel training (§2): pipelined Ring-AllReduce (the paper's
// evaluation workload), its two halves ReduceScatter and AllGather,
// and AllToAll (the §7 expert-parallelism extension).
//
// Every collective exposes its demand matrix — exactly the
// application-level knowledge §5.2's analytical predictor consumes —
// and carries per-chunk float64 checksums end to end so tests can
// verify reduction semantics, not just byte delivery.
package collective

import (
	"fmt"

	"flowpulse/internal/fabric"
	"flowpulse/internal/sim"
	"flowpulse/internal/topology"
	"flowpulse/internal/transport"
)

// DemandMatrix is the per-iteration traffic demand of a collective:
// payload bytes from each rank to each rank.
type DemandMatrix struct {
	// Hosts maps ranks to hosts.
	Hosts []topology.HostID
	// Bytes[i][j] is the payload rank i sends rank j per iteration.
	Bytes [][]int64
	// Msgs[i][j] lists the individual transport message sizes that
	// make up Bytes[i][j]. Predictors need the breakdown because wire
	// overhead is per packet and the last packet of every message may
	// be partial.
	Msgs [][][]int64
}

// N returns the number of ranks.
func (d *DemandMatrix) N() int { return len(d.Hosts) }

// Total returns the total payload bytes moved per iteration.
func (d *DemandMatrix) Total() int64 {
	var sum int64
	for _, row := range d.Bytes {
		for _, b := range row {
			sum += b
		}
	}
	return sum
}

// ToHost returns the aggregate demand into the given rank.
func (d *DemandMatrix) ToHost(rank int) int64 {
	var sum int64
	for i := range d.Bytes {
		sum += d.Bytes[i][rank]
	}
	return sum
}

// RunContext supplies a collective iteration with its environment.
type RunContext struct {
	// Stack is the transport to send over.
	Stack *transport.Stack
	// Engine schedules the start-time jitter.
	Engine *sim.Engine
	// Tag marks every data packet of this iteration (§5.1: sentinel +
	// job + iteration).
	Tag fabric.FlowTag
	// Priority is the fabric class; measured collectives run High.
	Priority fabric.Priority
	// StartOffsets delays each rank's first send — per-iteration
	// compute jitter and stragglers (§4). Nil means no jitter.
	StartOffsets []sim.Duration
	// Values are each rank's input checksums, one per chunk. Nil
	// disables value tracking.
	Values [][]float64
	// OnComplete fires once every rank has received its final message
	// of the iteration.
	OnComplete func(now sim.Time, result *Result)
}

// Result reports a finished iteration.
type Result struct {
	// FinishedAt is the completion time of the slowest rank.
	FinishedAt sim.Time
	// Values holds each rank's output checksums (nil when value
	// tracking is off).
	Values [][]float64
	// MessagesSent counts transport messages used.
	MessagesSent int
}

// scheduleStart schedules a rank's first send on the engine that owns
// its host. With a single engine this is ctx.Engine.After, byte for
// byte the historical behavior. In sharded runs the start is posted
// (lax) from the control domain into the host's domain; offsets
// shorter than the group lookahead land at the first window boundary,
// which is deterministic but may round the requested jitter up by at
// most one lookahead.
func (ctx *RunContext) scheduleStart(h topology.HostID, off sim.Duration, fn sim.Handler) {
	net := ctx.Stack.Network()
	if g := net.Group(); g != nil {
		g.PostLax(0, net.DomainOf(h), ctx.Engine.Now().Add(off), fn)
		return
	}
	ctx.Engine.After(off, fn)
}

// finish routes a per-rank completion event from the domain owning
// host h to the control domain, where the collective's shared
// remaining-counter lives. Cross-domain posts are drained in canonical
// order at the window barrier, so the counter decrements in the same
// order for every worker count. With a single engine fn runs inline,
// preserving the historical event order exactly.
func (ctx *RunContext) finish(h topology.HostID, now sim.Time, fn sim.Handler) {
	net := ctx.Stack.Network()
	if g := net.Group(); g != nil {
		g.Post(net.DomainOf(h), 0, now, fn)
		return
	}
	fn(now)
}

// Collective is a repeatable communication pattern.
type Collective interface {
	// Name identifies the pattern.
	Name() string
	// Demand returns the per-iteration demand matrix.
	Demand() *DemandMatrix
	// Run executes one iteration.
	Run(ctx *RunContext)
}

// Replannable is a collective that can rebuild itself over a new rank
// order or membership — the workload half of closed-loop remediation:
// after a quarantine degrades part of the fabric, the resilience
// re-planner derives a new group (re-ranked around the degraded leaf,
// or excluding unreachable hosts) and the collective re-extracts its
// demand matrix from it.
type Replannable interface {
	Collective
	// Replan returns a new collective of the same pattern and message
	// size over the given group. The receiver is not modified — an
	// in-flight iteration keeps its plan; the workload driver swaps at
	// the next iteration barrier.
	Replan(group []topology.HostID) Collective
}

// chunkSizes splits bytes into n chunks, the first bytes%n chunks one
// byte larger, never returning a zero-size chunk.
func chunkSizes(bytes int64, n int) ([]int64, error) {
	if bytes < int64(n) {
		return nil, fmt.Errorf("collective: %d bytes cannot be split into %d non-empty chunks", bytes, n)
	}
	base, extra := bytes/int64(n), bytes%int64(n)
	out := make([]int64, n)
	for i := range out {
		out[i] = base
		if int64(i) < extra {
			out[i]++
		}
	}
	return out, nil
}

func validateGroup(hosts []topology.HostID) error {
	if len(hosts) < 2 {
		return fmt.Errorf("collective: need at least 2 ranks, got %d", len(hosts))
	}
	seen := map[topology.HostID]bool{}
	for _, h := range hosts {
		if seen[h] {
			return fmt.Errorf("collective: host %d appears twice in the group", h)
		}
		seen[h] = true
	}
	return nil
}
