package collective

import (
	"math"
	"testing"
	"testing/quick"

	"flowpulse/internal/fabric"
	"flowpulse/internal/fault"
	"flowpulse/internal/sim"
	"flowpulse/internal/topology"
	"flowpulse/internal/transport"
)

type rig struct {
	topo  *topology.Topology
	eng   *sim.Engine
	net   *fabric.Network
	stack *transport.Stack
}

func newRig(t *testing.T, leaves, spines, hostsPerLeaf int, seed uint64) *rig {
	t.Helper()
	topo, err := topology.NewFatTree(topology.FatTreeConfig{Leaves: leaves, Spines: spines, HostsPerLeaf: hostsPerLeaf})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	net := fabric.MustNew(fabric.Config{Topo: topo, Engine: eng, Seed: seed})
	return &rig{topo: topo, eng: eng, net: net, stack: transport.NewStack(net, transport.Config{})}
}

func allHosts(topo *topology.Topology) []topology.HostID {
	hosts := make([]topology.HostID, len(topo.Hosts))
	for i := range hosts {
		hosts[i] = topology.HostID(i)
	}
	return hosts
}

// inputValues gives rank i chunk c the value i*1000 + c, so reduced
// sums are exactly predictable.
func inputValues(n int) [][]float64 {
	vals := make([][]float64, n)
	for i := range vals {
		vals[i] = make([]float64, n)
		for c := range vals[i] {
			vals[i][c] = float64(i*1000 + c)
		}
	}
	return vals
}

func chunkSum(n, c int) float64 {
	var s float64
	for i := 0; i < n; i++ {
		s += float64(i*1000 + c)
	}
	return s
}

func runCollective(t *testing.T, r *rig, c Collective, values [][]float64, offsets []sim.Duration) *Result {
	t.Helper()
	var res *Result
	c.Run(&RunContext{
		Stack:        r.stack,
		Engine:       r.eng,
		Tag:          fabric.FlowTag{Sentinel: true, Iter: 1},
		Priority:     fabric.High,
		Values:       values,
		StartOffsets: offsets,
		OnComplete:   func(_ sim.Time, out *Result) { res = out },
	})
	r.eng.Run()
	if res == nil {
		t.Fatal("collective never completed")
	}
	return res
}

func TestRingAllReduceReducesCorrectly(t *testing.T) {
	r := newRig(t, 8, 4, 1, 1)
	n := 8
	c := &RingAllReduce{Group: allHosts(r.topo), BytesPerRank: 1 << 20}
	res := runCollective(t, r, c, inputValues(n), nil)
	for rank := 0; rank < n; rank++ {
		for ch := 0; ch < n; ch++ {
			want := chunkSum(n, ch)
			if got := res.Values[rank][ch]; math.Abs(got-want) > 1e-9 {
				t.Fatalf("rank %d chunk %d = %v, want %v", rank, ch, got, want)
			}
		}
	}
	if res.MessagesSent != n*2*(n-1) {
		t.Fatalf("messages = %d, want %d", res.MessagesSent, n*2*(n-1))
	}
}

func TestRingAllReduceWithJitterStillReduces(t *testing.T) {
	r := newRig(t, 8, 4, 1, 2)
	n := 8
	rng := sim.NewRNG(2, "jitter")
	offsets := make([]sim.Duration, n)
	for i := range offsets {
		offsets[i] = rng.UniformDuration(5 * sim.Microsecond)
	}
	c := &RingAllReduce{Group: allHosts(r.topo), BytesPerRank: 256 << 10}
	res := runCollective(t, r, c, inputValues(n), offsets)
	for rank := 0; rank < n; rank++ {
		for ch := 0; ch < n; ch++ {
			if math.Abs(res.Values[rank][ch]-chunkSum(n, ch)) > 1e-9 {
				t.Fatalf("jittered reduce wrong at rank %d chunk %d", rank, ch)
			}
		}
	}
}

func TestRingAllReduceUnderSilentFault(t *testing.T) {
	r := newRig(t, 8, 4, 1, 3)
	// 5% silent drop on one spine->leaf link: transport must recover
	// and reduction must stay exact.
	dstLeaf := r.topo.LeafOf(3)
	link := r.topo.TrunkLinks(r.topo.Spines()[1], dstLeaf)[0]
	r.net.InjectFault(link, r.net.DirToward(link, dstLeaf), fault.NewBernoulliDrop(0.05, sim.NewRNG(3, "f")))
	n := 8
	c := &RingAllReduce{Group: allHosts(r.topo), BytesPerRank: 1 << 20}
	res := runCollective(t, r, c, inputValues(n), nil)
	for rank := 0; rank < n; rank++ {
		for ch := 0; ch < n; ch++ {
			if math.Abs(res.Values[rank][ch]-chunkSum(n, ch)) > 1e-9 {
				t.Fatalf("reduction corrupted by packet loss at rank %d chunk %d", rank, ch)
			}
		}
	}
	if r.stack.Stats().Retransmits == 0 {
		t.Fatal("expected retransmits under a 5% fault")
	}
}

func TestRingAllReduceDemand(t *testing.T) {
	n := 8
	var D int64 = 1 << 20
	c := &RingAllReduce{Group: make([]topology.HostID, n), BytesPerRank: D}
	for i := range c.Group {
		c.Group[i] = topology.HostID(i)
	}
	d := c.Demand()
	// Each rank sends only to its successor.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j == (i+1)%n {
				if d.Bytes[i][j] == 0 {
					t.Fatalf("no demand from %d to successor %d", i, j)
				}
				continue
			}
			if d.Bytes[i][j] != 0 {
				t.Fatalf("unexpected demand %d->%d", i, j)
			}
		}
	}
	// Total = N ranks * 2(N-1)/N * D.
	want := int64(n) * 2 * int64(n-1) * D / int64(n)
	if got := d.Total(); got != want {
		t.Fatalf("total demand %d, want %d", got, want)
	}
	// Demand must equal what an actual run sends.
	if got := d.ToHost(1); got != d.Bytes[0][1] {
		t.Fatalf("ToHost(1) = %d, want %d", got, d.Bytes[0][1])
	}
}

func TestReduceScatterOwnsReducedChunk(t *testing.T) {
	r := newRig(t, 8, 4, 1, 4)
	n := 8
	c := &ReduceScatter{Group: allHosts(r.topo), BytesPerRank: 512 << 10}
	if c.Steps() != n-1 {
		t.Fatalf("steps = %d, want %d", c.Steps(), n-1)
	}
	res := runCollective(t, r, c, inputValues(n), nil)
	for rank := 0; rank < n; rank++ {
		owned := (rank + 1) % n
		if math.Abs(res.Values[rank][owned]-chunkSum(n, owned)) > 1e-9 {
			t.Fatalf("rank %d does not own reduced chunk %d", rank, owned)
		}
	}
}

func TestPaperThirtyOneStages(t *testing.T) {
	// §6: 31-stage ring collective over 32 leaves.
	group := make([]topology.HostID, 32)
	for i := range group {
		group[i] = topology.HostID(i)
	}
	rs := &ReduceScatter{Group: group, BytesPerRank: 32 << 20}
	if rs.Steps() != 31 {
		t.Fatalf("reduce-scatter over 32 ranks has %d stages, want 31", rs.Steps())
	}
}

func TestAllGatherDistributesChunks(t *testing.T) {
	r := newRig(t, 8, 4, 1, 5)
	n := 8
	// Rank i owns chunk i with value 7000+i; everything else zero.
	vals := make([][]float64, n)
	for i := range vals {
		vals[i] = make([]float64, n)
		vals[i][i] = float64(7000 + i)
	}
	c := &AllGather{Group: allHosts(r.topo), BytesPerRank: 512 << 10}
	res := runCollective(t, r, c, vals, nil)
	for rank := 0; rank < n; rank++ {
		for ch := 0; ch < n; ch++ {
			if got, want := res.Values[rank][ch], float64(7000+ch); got != want {
				t.Fatalf("rank %d chunk %d = %v, want %v", rank, ch, got, want)
			}
		}
	}
}

func TestAllToAllExchanges(t *testing.T) {
	r := newRig(t, 8, 4, 1, 6)
	n := 8
	// Rank i sends rank j the value 100*i + j.
	vals := make([][]float64, n)
	for i := range vals {
		vals[i] = make([]float64, n)
		for j := range vals[i] {
			vals[i][j] = float64(100*i + j)
		}
	}
	c := &AllToAll{Group: allHosts(r.topo), BytesPerPair: 128 << 10}
	res := runCollective(t, r, c, vals, nil)
	for rank := 0; rank < n; rank++ {
		for from := 0; from < n; from++ {
			if got, want := res.Values[rank][from], float64(100*from+rank); got != want {
				t.Fatalf("rank %d block from %d = %v, want %v", rank, from, got, want)
			}
		}
	}
	d := c.Demand()
	if d.Total() != int64(n*(n-1))*(128<<10) {
		t.Fatalf("all-to-all demand = %d", d.Total())
	}
}

func TestLocalRingTrafficStaysLocal(t *testing.T) {
	// 4 hosts per leaf, ring in host order: 3 of every 4 ring hops are
	// intra-leaf and must not touch any spine.
	r := newRig(t, 4, 4, 4, 7)
	spinePackets := 0
	for _, spine := range r.topo.Spines() {
		r.net.SetIngressHook(spine, func(sim.Time, int, *fabric.Packet) { spinePackets++ })
	}
	c := &RingAllReduce{Group: allHosts(r.topo), BytesPerRank: 256 << 10}
	res := runCollective(t, r, c, nil, nil)
	if res == nil {
		t.Fatal("no result")
	}
	total := int(r.net.Stats().Sent)
	if spinePackets >= total/2 {
		t.Fatalf("spine saw %d of %d packets; locality optimization broken", spinePackets, total)
	}
}

func TestChunkSizes(t *testing.T) {
	sizes, err := chunkSizes(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{3, 3, 2, 2}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("chunkSizes(10,4) = %v", sizes)
		}
	}
	if _, err := chunkSizes(3, 4); err == nil {
		t.Fatal("oversplit accepted")
	}
}

// Property: chunk schedules visit every chunk exactly once per phase,
// and demand totals match the schedule for arbitrary small rings.
func TestRingScheduleProperty(t *testing.T) {
	f := func(nn uint8, bytesKB uint16) bool {
		n := 2 + int(nn%14)
		bytes := int64(bytesKB%256+1) * 1024
		if bytes < int64(n) {
			bytes = int64(n)
		}
		// Reduce-scatter phase: rank 0's sent chunks are distinct.
		seen := map[int]bool{}
		for t := 0; t < n-1; t++ {
			c := ringChunkAllReduce(n, 0, t)
			if c < 0 || c >= n || seen[c] {
				return false
			}
			seen[c] = true
		}
		// All-gather phase too.
		seen = map[int]bool{}
		for t := n - 1; t < 2*(n-1); t++ {
			c := ringChunkAllReduce(n, 0, t)
			if c < 0 || c >= n || seen[c] {
				return false
			}
			seen[c] = true
		}
		group := make([]topology.HostID, n)
		for i := range group {
			group[i] = topology.HostID(i)
		}
		d := (&RingAllReduce{Group: group, BytesPerRank: bytes}).Demand()
		// Mass conservation: total equals sum over rank/step chunk sizes.
		chunks, err := chunkSizes(bytes, n)
		if err != nil {
			return false
		}
		var want int64
		for rank := 0; rank < n; rank++ {
			for st := 0; st < 2*(n-1); st++ {
				want += chunks[ringChunkAllReduce(n, rank, st)]
			}
		}
		return d.Total() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGroupValidation(t *testing.T) {
	if err := validateGroup([]topology.HostID{0}); err == nil {
		t.Error("single-rank group accepted")
	}
	if err := validateGroup([]topology.HostID{0, 1, 0}); err == nil {
		t.Error("duplicate host accepted")
	}
	if err := validateGroup([]topology.HostID{0, 1, 2}); err != nil {
		t.Errorf("valid group rejected: %v", err)
	}
}
