package collective

import (
	"fmt"

	"flowpulse/internal/sim"
	"flowpulse/internal/topology"
	"flowpulse/internal/transport"
)

// RingAllReduce is the pipelined ring implementation of AllReduce used
// by NCCL-style libraries (§2): N-1 reduce-scatter steps followed by
// N-1 all-gather steps over a virtual ring, moving 2·D·(N-1)/N bytes
// per rank per iteration. Each leaf hosts a single ring neighbor pair,
// which is the single-non-local-sender-per-leaf property FlowPulse's
// jitter tolerance relies on (§5.1).
type RingAllReduce struct {
	// Group lists the participating hosts; rank i talks to rank
	// (i+1) mod N. Ring order is the slice order.
	Group []topology.HostID
	// BytesPerRank is D, the gradient bytes each rank contributes.
	BytesPerRank int64
}

// Name implements Collective.
func (r *RingAllReduce) Name() string { return "ring-allreduce" }

// Steps returns the number of pipeline steps per iteration.
func (r *RingAllReduce) Steps() int { return 2 * (len(r.Group) - 1) }

// Demand implements Collective.
func (r *RingAllReduce) Demand() *DemandMatrix {
	return ringDemand(r.Group, r.BytesPerRank, r.Steps(), ringChunkAllReduce)
}

// Run implements Collective.
func (r *RingAllReduce) Run(ctx *RunContext) {
	runRing(ctx, r.Group, r.BytesPerRank, r.Steps(), ringChunkAllReduce, len(r.Group)-1)
}

// Replan implements Replannable: the same D over a new ring order (or
// a smaller surviving membership in degraded mode — the dropped ranks'
// chunks are re-split across the survivors, so the reduction still
// covers the full D bytes, proxied by the remaining ring).
func (r *RingAllReduce) Replan(group []topology.HostID) Collective {
	return &RingAllReduce{Group: append([]topology.HostID(nil), group...), BytesPerRank: r.BytesPerRank}
}

// ReduceScatter is the first half of the ring: after N-1 steps rank i
// owns the fully reduced chunk (i+1) mod N. On 32 nodes this is the
// paper's "31-stage" collective.
type ReduceScatter struct {
	Group        []topology.HostID
	BytesPerRank int64
}

// Name implements Collective.
func (r *ReduceScatter) Name() string { return "reduce-scatter" }

// Steps returns the number of pipeline steps per iteration.
func (r *ReduceScatter) Steps() int { return len(r.Group) - 1 }

// Demand implements Collective.
func (r *ReduceScatter) Demand() *DemandMatrix {
	return ringDemand(r.Group, r.BytesPerRank, r.Steps(), ringChunkAllReduce)
}

// Run implements Collective.
func (r *ReduceScatter) Run(ctx *RunContext) {
	runRing(ctx, r.Group, r.BytesPerRank, r.Steps(), ringChunkAllReduce, len(r.Group)-1)
}

// AllGather is the second half of the ring: rank i starts owning chunk
// i and after N-1 forwarding steps every rank holds every chunk.
type AllGather struct {
	Group        []topology.HostID
	BytesPerRank int64
}

// Name implements Collective.
func (a *AllGather) Name() string { return "all-gather" }

// Steps returns the number of pipeline steps per iteration.
func (a *AllGather) Steps() int { return len(a.Group) - 1 }

// Demand implements Collective.
func (a *AllGather) Demand() *DemandMatrix {
	return ringDemand(a.Group, a.BytesPerRank, a.Steps(), ringChunkAllGather)
}

// Run implements Collective.
func (a *AllGather) Run(ctx *RunContext) {
	runRing(ctx, a.Group, a.BytesPerRank, a.Steps(), ringChunkAllGather, 0)
}

// ringChunkAllReduce gives the chunk rank i forwards at step t of an
// AllReduce (or its reduce-scatter prefix): during reduce-scatter
// (t < N-1) rank i sends chunk (i-t) mod N; during all-gather it sends
// chunk (i+1-(t-(N-1))) mod N — in both phases, exactly the chunk it
// received (and, in phase one, reduced) at step t-1.
func ringChunkAllReduce(n, rank, step int) int {
	if step < n-1 {
		return ((rank-step)%n + n) % n
	}
	tp := step - (n - 1)
	return ((rank+1-tp)%n + n) % n
}

// ringChunkAllGather gives the chunk rank i forwards at step t of a
// standalone AllGather: its own chunk first, then whatever arrived.
func ringChunkAllGather(n, rank, step int) int {
	return ((rank-step)%n + n) % n
}

func ringDemand(group []topology.HostID, bytes int64, steps int, chunkAt func(n, rank, step int) int) *DemandMatrix {
	n := len(group)
	chunks, err := chunkSizes(bytes, n)
	if err != nil {
		panic(err)
	}
	d := &DemandMatrix{
		Hosts: append([]topology.HostID(nil), group...),
		Bytes: make([][]int64, n),
		Msgs:  make([][][]int64, n),
	}
	for i := range d.Bytes {
		d.Bytes[i] = make([]int64, n)
		d.Msgs[i] = make([][]int64, n)
	}
	for rank := 0; rank < n; rank++ {
		succ := (rank + 1) % n
		for step := 0; step < steps; step++ {
			sz := chunks[chunkAt(n, rank, step)]
			d.Bytes[rank][succ] += sz
			d.Msgs[rank][succ] = append(d.Msgs[rank][succ], sz)
		}
	}
	return d
}

// runRing drives one pipelined ring iteration. reduceSteps is how many
// initial steps accumulate values (the rest overwrite, all-gather
// style).
func runRing(ctx *RunContext, group []topology.HostID, bytes int64, steps int,
	chunkAt func(n, rank, step int) int, reduceSteps int) {
	if err := validateGroup(group); err != nil {
		panic(err)
	}
	n := len(group)
	chunks, err := chunkSizes(bytes, n)
	if err != nil {
		panic(err)
	}

	var vals [][]float64
	if ctx.Values != nil {
		if len(ctx.Values) != n {
			panic(fmt.Sprintf("collective: %d value rows for %d ranks", len(ctx.Values), n))
		}
		vals = make([][]float64, n)
		for i := range vals {
			if len(ctx.Values[i]) != n {
				panic(fmt.Sprintf("collective: rank %d has %d chunk values, want %d", i, len(ctx.Values[i]), n))
			}
			vals[i] = append([]float64(nil), ctx.Values[i]...)
		}
	}

	total := n * steps
	run := &ringState{
		ctx: ctx, group: group, chunks: chunks, chunkAt: chunkAt,
		steps: steps, reduceSteps: reduceSteps, vals: vals, remaining: total, totalMsgs: total,
	}
	run.done = func(now sim.Time) {
		run.remaining--
		if run.remaining == 0 && ctx.OnComplete != nil {
			ctx.OnComplete(now, &Result{FinishedAt: now, Values: run.vals, MessagesSent: run.totalMsgs})
		}
	}
	for rank := 0; rank < n; rank++ {
		rank := rank
		start := func(sim.Time) { run.send(rank, 0) }
		var off sim.Duration
		if ctx.StartOffsets != nil {
			off = ctx.StartOffsets[rank]
		}
		ctx.scheduleStart(group[rank], off, start)
	}
}

type ringState struct {
	ctx         *RunContext
	group       []topology.HostID
	chunks      []int64
	chunkAt     func(n, rank, step int) int
	steps       int
	reduceSteps int
	vals        [][]float64
	remaining   int
	totalMsgs   int
	done        sim.Handler
}

func (rs *ringState) send(rank, step int) {
	n := len(rs.group)
	succ := (rank + 1) % n
	chunk := rs.chunkAt(n, rank, step)
	var value float64
	if rs.vals != nil {
		value = rs.vals[rank][chunk]
	}
	m := &transport.Message{
		Src:      rs.group[rank],
		Dst:      rs.group[succ],
		Bytes:    int(rs.chunks[chunk]),
		Priority: rs.ctx.Priority,
		Tag:      rs.ctx.Tag,
		Value:    value,
		OnDelivered: func(now sim.Time, m *transport.Message) {
			rs.onRecv(now, succ, step, chunk, m.Value)
		},
	}
	rs.ctx.Stack.Send(m)
}

func (rs *ringState) onRecv(now sim.Time, rank, step, chunk int, value float64) {
	if rs.vals != nil {
		if step < rs.reduceSteps {
			rs.vals[rank][chunk] += value
		} else {
			rs.vals[rank][chunk] = value
		}
	}
	if step+1 < rs.steps {
		rs.send(rank, step+1)
	}
	// The remaining-counter is shared by every rank; in sharded runs it
	// must only ever be touched from the control domain.
	rs.ctx.finish(rs.group[rank], now, rs.done)
}
