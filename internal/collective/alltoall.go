package collective

import (
	"fmt"

	"flowpulse/internal/sim"
	"flowpulse/internal/topology"
	"flowpulse/internal/transport"
)

// AllToAll is the personalized exchange used by expert parallelism
// (§7 "Beyond reduction collectives"): every rank sends a distinct
// block to every other rank. It is scheduled in N-1 shifted rounds
// (round t: rank i sends to rank (i+t) mod N), the standard
// congestion-avoiding permutation schedule; rounds are pipelined per
// rank, the next starting when the previous round's block has been
// delivered to this rank.
type AllToAll struct {
	// Group lists the participating hosts.
	Group []topology.HostID
	// BytesPerPair is the payload each rank sends each other rank.
	BytesPerPair int64
}

// Name implements Collective.
func (a *AllToAll) Name() string { return "all-to-all" }

// Demand implements Collective.
func (a *AllToAll) Demand() *DemandMatrix {
	n := len(a.Group)
	d := &DemandMatrix{
		Hosts: append([]topology.HostID(nil), a.Group...),
		Bytes: make([][]int64, n),
		Msgs:  make([][][]int64, n),
	}
	for i := range d.Bytes {
		d.Bytes[i] = make([]int64, n)
		d.Msgs[i] = make([][]int64, n)
		for j := range d.Bytes[i] {
			if i != j {
				d.Bytes[i][j] = a.BytesPerPair
				d.Msgs[i][j] = []int64{a.BytesPerPair}
			}
		}
	}
	return d
}

// Run implements Collective.
func (a *AllToAll) Run(ctx *RunContext) {
	if err := validateGroup(a.Group); err != nil {
		panic(err)
	}
	if a.BytesPerPair <= 0 {
		panic(fmt.Sprintf("collective: all-to-all with %d bytes per pair", a.BytesPerPair))
	}
	n := len(a.Group)

	var vals [][]float64
	if ctx.Values != nil {
		if len(ctx.Values) != n {
			panic(fmt.Sprintf("collective: %d value rows for %d ranks", len(ctx.Values), n))
		}
		// vals[dst][src] collects the block src sent dst; a rank's own
		// block stays in place.
		vals = make([][]float64, n)
		for i := range vals {
			vals[i] = make([]float64, n)
			vals[i][i] = ctx.Values[i][i]
		}
	}

	st := &a2aState{ctx: ctx, a: a, vals: vals, remaining: n * (n - 1)}
	st.done = func(now sim.Time) {
		st.remaining--
		if st.remaining == 0 && ctx.OnComplete != nil {
			ctx.OnComplete(now, &Result{FinishedAt: now, Values: st.vals, MessagesSent: n * (n - 1)})
		}
	}
	for rank := 0; rank < n; rank++ {
		rank := rank
		var off sim.Duration
		if ctx.StartOffsets != nil {
			off = ctx.StartOffsets[rank]
		}
		ctx.scheduleStart(a.Group[rank], off, func(sim.Time) { st.send(rank, 1) })
	}
}

type a2aState struct {
	ctx       *RunContext
	a         *AllToAll
	vals      [][]float64
	remaining int
	done      sim.Handler
}

func (st *a2aState) send(rank, round int) {
	n := len(st.a.Group)
	dst := (rank + round) % n
	var value float64
	if st.ctx.Values != nil {
		value = st.ctx.Values[rank][dst]
	}
	st.ctx.Stack.Send(&transport.Message{
		Src:      st.a.Group[rank],
		Dst:      st.a.Group[dst],
		Bytes:    int(st.a.BytesPerPair),
		Priority: st.ctx.Priority,
		Tag:      st.ctx.Tag,
		Value:    value,
		OnDelivered: func(now sim.Time, m *transport.Message) {
			st.onRecv(now, dst, rank, round, m.Value)
		},
	})
}

func (st *a2aState) onRecv(now sim.Time, rank, from, round int, value float64) {
	if st.vals != nil {
		st.vals[rank][from] = value
	}
	if round+1 < len(st.a.Group) {
		st.send(rank, round+1)
	}
	// Shared counter — only the control domain may decrement it.
	st.ctx.finish(st.a.Group[rank], now, st.done)
}
