// Package fabric simulates the lossless Ethernet backend network the
// paper targets (§2): output-queued switches with per-priority egress
// queues, PFC link-layer flow control, adaptive per-packet spraying on
// upstream paths (single-path downstream), FIB routing that converges
// around *known* faults only, and silent fault processes attached to
// links. It is the ns-3 substitute described in DESIGN.md §4.
package fabric

import (
	"fmt"

	"flowpulse/internal/sim"
	"flowpulse/internal/topology"
)

// Priority is a packet's traffic class. The fabric serves High before
// Low at every egress port; FlowPulse runs the measured collective at
// High priority to isolate it from background load (§5.1).
type Priority uint8

const (
	// Ctrl is the strict-top class for transport acknowledgements, so
	// tiny control frames never wait behind bulk data (RoCE NICs keep
	// ACK/CNP traffic on its own high-priority class; without this, a
	// receiver's ACKs queue behind its own outgoing chunk and every
	// RTO fires spuriously).
	Ctrl Priority = 0
	// High is the prioritized, measured collective class (§5.1).
	High Priority = 1
	// Low is background traffic.
	Low Priority = 2

	numPriorities = 3
)

// PacketKind distinguishes payload-bearing packets from transport
// acknowledgements.
type PacketKind uint8

const (
	// Data carries collective or background payload.
	Data PacketKind = iota
	// Ack is a transport acknowledgement.
	Ack
)

// FlowTag is the in-packet marking proposed in §5.1: the communication
// library tags every packet of the measured collective with a sentinel
// plus the training-job and iteration numbers, so switches know which
// traffic to measure without any control-plane messaging.
type FlowTag struct {
	// Sentinel marks packets belonging to a measured collective.
	Sentinel bool
	// Job identifies the training job (multi-job clusters, §7).
	Job uint16
	// Iter is the training-iteration number.
	Iter uint32
}

// EncodeFlowTag packs a tag into a 64-bit header field as a switch
// dataplane would see it.
func EncodeFlowTag(t FlowTag) uint64 {
	v := uint64(t.Iter) | uint64(t.Job)<<32
	if t.Sentinel {
		v |= 1 << 63
	}
	return v
}

// DecodeFlowTag unpacks EncodeFlowTag.
func DecodeFlowTag(v uint64) FlowTag {
	return FlowTag{
		Sentinel: v>>63 != 0,
		Job:      uint16(v >> 32 & 0xffff),
		Iter:     uint32(v),
	}
}

// Packet is one frame on the wire. Packets are owned by the Network's
// pool: the fabric frees delivered and dropped packets, so receivers
// must copy anything they keep.
type Packet struct {
	// ID is unique per Network for the packet's lifetime.
	ID uint64
	// Src and Dst are end hosts.
	Src, Dst topology.HostID
	// Size is the on-wire size in bytes, headers included.
	Size int
	// Priority selects the egress queue class.
	Priority Priority
	// Kind distinguishes data from acknowledgements.
	Kind PacketKind
	// Tag is the FlowPulse collective marking.
	Tag FlowTag
	// Msg identifies the transport message the packet belongs to.
	Msg uint64
	// Seq is the packet's index within its message.
	Seq int
	// Retx marks retransmissions.
	Retx bool
	// CE is the ECN congestion-experienced codepoint: set by a switch
	// when the packet was enqueued above the egress marking threshold
	// (data packets), or echoed back by the receiver so the sender's
	// DCQCN rate limiter sees the congestion notification (ACKs).
	CE bool
	// Stamp is the instant this copy left the source NIC (data
	// packets, set by the transport's dequeue hook) or the echoed
	// stamp of the data copy being acknowledged (ACKs) — the TCP
	// timestamp option, which lets the sender measure RTT without
	// retransmission ambiguity. Metadata only; never affects
	// forwarding.
	Stamp sim.Time
	// Ctx is opaque sender-attached context (see SendSpec.Ctx). It
	// must be immutable while the packet is in flight: in sharded mode
	// the receiving domain reads it after the window barrier.
	Ctx any

	// ingress tracks the switch ingress port holding PFC credit for
	// this packet while it sits inside a switch.
	ingressSwitch topology.SwitchID
	ingressPort   int
	inSwitch      bool
}

// String formats the packet for diagnostics.
func (p *Packet) String() string {
	kind := "data"
	if p.Kind == Ack {
		kind = "ack"
	}
	return fmt.Sprintf("pkt%d %s %d->%d msg%d seq%d %dB", p.ID, kind, p.Src, p.Dst, p.Msg, p.Seq, p.Size)
}

// FlowKey returns the value ECMP-style policies hash: stable per
// (src, dst, message) so a flow sticks to one path under per-flow
// balancing.
func (p *Packet) FlowKey() uint64 {
	return uint64(p.Src)<<48 ^ uint64(p.Dst)<<32 ^ p.Msg
}

// allocPacket takes a packet from one domain's pool. Packet IDs embed
// the allocating domain in the top bits so they stay unique across
// domains without shared state; the legacy single-domain network keeps
// the historical dense numbering (domain 0 contributes no high bits).
func (n *Network) allocPacket(d *domainState) *Packet {
	var p *Packet
	if k := len(d.freePackets); k > 0 {
		p = d.freePackets[k-1]
		d.freePackets = d.freePackets[:k-1]
		*p = Packet{}
	} else {
		p = &Packet{}
	}
	d.nextPacketID++
	p.ID = uint64(d.dom)<<48 | d.nextPacketID
	return p
}

// freePacket returns a packet to one domain's pool — always the domain
// on whose engine the packet's journey ended, so pools are never
// touched concurrently (packets, like timers, migrate between pools).
func (n *Network) freePacket(d *domainState, p *Packet) {
	d.freePackets = append(d.freePackets, p)
}
