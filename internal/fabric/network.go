package fabric

import (
	"fmt"

	"flowpulse/internal/sim"
	"flowpulse/internal/spray"
	"flowpulse/internal/topology"
)

// Config parameterizes a Network.
type Config struct {
	// Topo is the wiring to simulate. Required.
	Topo *topology.Topology
	// Engine drives the simulation. Required unless Group is set, in
	// which case it defaults to (and must be) the group's control
	// engine.
	Engine *sim.Engine
	// Group, when set, runs the fabric in sharded-parallel mode: each
	// switch (plus its attached hosts) executes on the engine of its
	// Partition domain, and cross-domain packet handoff goes through
	// the group's barrier mailboxes. Requires Partition.
	Group *sim.Group
	// Partition is the domain decomposition matching Group.
	Partition *topology.Partition
	// Spray selects the upstream load-balancing policy. Defaults to
	// spray.LeastLoaded, the paper's APS.
	Spray spray.Kind
	// Seed roots all of the fabric's random streams.
	Seed uint64
	// XoffBytes and XonBytes are the PFC pause/resume thresholds per
	// ingress port and priority. Defaults: 1 MiB / 512 KiB.
	XoffBytes, XonBytes int64
	// SprayMemory is the time constant of the per-port utilization
	// estimator that adaptive policies grade ports by (queued +
	// in-flight + exponentially decayed recent bytes). Zero means the
	// 5 µs default; negative disables the memory term, reducing
	// adaptive spraying to instantaneous queue depth.
	SprayMemory sim.Duration
	// ECN configures congestion-experienced marking at switch egress
	// queues. Zero value = disabled: no per-direction RNG streams are
	// allocated and the data path is byte-identical to pre-ECN builds.
	ECN ECNConfig
}

// ECNConfig is the RED-style marking profile every switch egress queue
// applies when enabled: a packet enqueued with its class's queue depth
// above KMaxBytes is always marked CE, above KMinBytes with probability
// PMax scaled linearly between the two thresholds.
type ECNConfig struct {
	Enabled bool
	// KMinBytes and KMaxBytes bound the marking ramp. Defaults
	// (when Enabled): 100 KiB and 400 KiB — comfortably under the 1 MiB
	// PFC Xoff threshold, so ECN reacts before PFC ever pauses.
	KMinBytes, KMaxBytes int64
	// PMax is the marking probability at KMaxBytes (default 0.2).
	PMax float64
}

func (c *Config) setDefaults() {
	if c.Spray == "" {
		c.Spray = spray.LeastLoaded
	}
	if c.XoffBytes == 0 {
		c.XoffBytes = 1 << 20
	}
	if c.XonBytes == 0 {
		c.XonBytes = c.XoffBytes / 2
	}
	if c.SprayMemory == 0 {
		c.SprayMemory = 5 * sim.Microsecond
	}
	if c.ECN.Enabled {
		if c.ECN.KMinBytes == 0 {
			c.ECN.KMinBytes = 100 << 10
		}
		if c.ECN.KMaxBytes == 0 {
			c.ECN.KMaxBytes = 400 << 10
		}
		if c.ECN.PMax == 0 {
			c.ECN.PMax = 0.2
		}
	}
}

// Stats are network-wide packet accounting counters. In an idle
// network, Sent = Delivered + FaultDropped + RouteDropped +
// AdminDropped (packet conservation).
type Stats struct {
	// Sent counts packets injected by hosts.
	Sent uint64
	// SentBytes counts injected bytes.
	SentBytes uint64
	// Delivered counts packets handed to a destination host.
	Delivered uint64
	// DeliveredBytes counts delivered bytes.
	DeliveredBytes uint64
	// FaultDropped counts packets silently dropped by fault models.
	FaultDropped uint64
	// RouteDropped counts packets with no eligible egress port.
	RouteDropped uint64
	// RouteDroppedBytes counts the bytes of route-dropped packets.
	RouteDroppedBytes uint64
	// AdminDropped counts packets caught in flight on a link that went
	// administratively down.
	AdminDropped uint64
	// PFCPauses counts pause events issued.
	PFCPauses uint64
	// CEMarked counts data packets marked congestion-experienced at a
	// switch egress queue (0 unless Config.ECN is enabled).
	CEMarked uint64
	// ProbesSent and ProbesLost count link-local OAM probes (ProbeLink)
	// and the ones the fault process ate. Probes are not packets: they
	// bypass the forwarding plane and do not enter the conservation
	// identity above.
	ProbesSent, ProbesLost uint64
}

// IngressHook observes every packet accepted at a switch ingress port,
// before forwarding. FlowPulse's leaf monitors attach here — this is
// the programmable-switch counter program of §5.1.
type IngressHook func(now sim.Time, port int, pkt *Packet)

// Receiver accepts packets delivered to a host. The packet is freed
// after the callback returns; receivers must copy retained data.
type Receiver func(now sim.Time, pkt *Packet)

// DequeueHook observes each packet at the instant the host NIC begins
// serializing it onto the wire.
type DequeueHook func(now sim.Time, pkt *Packet)

type hostState struct {
	id        topology.HostID
	egress    *linkDir
	recv      Receiver
	onDequeue DequeueHook
	d         *domainState
}

type switchState struct {
	id   topology.SwitchID
	kind topology.SwitchKind
	pod  int
	ord  int // ordinal within its kind

	egress     []*linkDir // per port
	occ        [][numPriorities]int64
	pausedUp   [][numPriorities]bool // pause issued to the upstream of this ingress port
	portToHost []topology.HostID     // leaf only, -1 where not a host port

	policy spray.Policy
	cands  []spray.Candidate // scratch

	d *domainState
}

// domainState is the per-domain mutable slice of the fabric: counters,
// object pools, and packet-ID allocation. In legacy (single-threaded)
// mode there is exactly one, shared by every node; in sharded mode
// each partition domain owns one and touches only its own, so worker
// domains never contend — the only cross-domain traffic is the posts
// at the window barrier.
type domainState struct {
	eng *sim.Engine
	dom int

	stats Stats

	freePackets  []*Packet
	freeArrivals []*arrivalTimer
	freePauses   []*pauseTimer
	nextPacketID uint64
}

// Network is the simulated fabric. In legacy mode it is
// single-threaded: all access must happen from the owning engine's
// goroutine. In sharded mode (Config.Group) each node's state belongs
// to its partition domain and is touched only by that domain's events;
// administrative operations (fault injection, SetLinkAdmin, ProbeLink)
// must run on the control engine.
type Network struct {
	cfg    Config
	topo   *topology.Topology
	engine *sim.Engine // control engine

	grp *sim.Group // nil in legacy mode
	par bool

	hosts    []hostState
	switches []switchState
	links    []linkState

	// doms holds the per-domain state; exactly one entry in legacy
	// mode. The slice is allocated once and never grows, so the
	// interior pointers held by nodes and link directions stay valid.
	doms []domainState

	fib *fibTable

	ingressHooks [][]IngressHook // per switch, in registration order, empty when absent

	// fibRecomputes counts administrative transitions (FIB churn).
	fibRecomputes uint64

	tau float64 // spray-memory time constant in picoseconds; <= 0 disables
}

// allocArrival takes an arrival timer from a domain's pool (see
// arrivalTimer). Timers migrate between domain pools: allocated by the
// sender's domain, freed into the receiver's — each pool is still only
// ever touched by its owning domain.
func (n *Network) allocArrival(d *domainState) *arrivalTimer {
	if k := len(d.freeArrivals); k > 0 {
		t := d.freeArrivals[k-1]
		d.freeArrivals = d.freeArrivals[:k-1]
		return t
	}
	return &arrivalTimer{n: n}
}

// allocPause takes a PFC pause-frame timer from a domain's pool (see
// pauseTimer).
func (n *Network) allocPause(d *domainState) *pauseTimer {
	if k := len(d.freePauses); k > 0 {
		t := d.freePauses[k-1]
		d.freePauses = d.freePauses[:k-1]
		return t
	}
	return &pauseTimer{n: n}
}

// New builds a Network over the given topology. All links start
// administratively up and fault-free.
func New(cfg Config) (*Network, error) {
	if cfg.Group != nil {
		if cfg.Partition == nil {
			return nil, fmt.Errorf("fabric: Config.Group requires Config.Partition")
		}
		if cfg.Partition.NumDomains != cfg.Group.Domains() {
			return nil, fmt.Errorf("fabric: partition has %d domains, group has %d",
				cfg.Partition.NumDomains, cfg.Group.Domains())
		}
		if cfg.Engine == nil {
			cfg.Engine = cfg.Group.Control()
		} else if cfg.Engine != cfg.Group.Control() {
			return nil, fmt.Errorf("fabric: Config.Engine must be the group's control engine")
		}
	}
	if cfg.Topo == nil || cfg.Engine == nil {
		return nil, fmt.Errorf("fabric: Config.Topo and Config.Engine are required")
	}
	cfg.setDefaults()

	n := &Network{
		cfg:          cfg,
		topo:         cfg.Topo,
		engine:       cfg.Engine,
		grp:          cfg.Group,
		par:          cfg.Group != nil,
		hosts:        make([]hostState, len(cfg.Topo.Hosts)),
		switches:     make([]switchState, len(cfg.Topo.Switches)),
		links:        make([]linkState, len(cfg.Topo.Links)),
		ingressHooks: make([][]IngressHook, len(cfg.Topo.Switches)),
		tau:          float64(cfg.SprayMemory),
	}

	if n.par {
		n.doms = make([]domainState, cfg.Partition.NumDomains)
		for d := range n.doms {
			n.doms[d] = domainState{eng: cfg.Group.Engine(d), dom: d}
		}
	} else {
		n.doms = []domainState{{eng: cfg.Engine, dom: 0}}
	}

	for i := range n.links {
		tl := n.topo.Link(topology.LinkID(i))
		ls := &n.links[i]
		ls.topo = tl
		ls.adminUp = true
		ls.dirs[DirAtoB] = linkDir{link: ls, sender: tl.A, receiver: tl.B, rate: tl.RateBPS, prop: tl.Propagation}
		ls.dirs[DirBtoA] = linkDir{link: ls, sender: tl.B, receiver: tl.A, rate: tl.RateBPS, prop: tl.Propagation}
		for d := range ls.dirs {
			ld := &ls.dirs[d]
			ld.sendD = n.domOfEndpoint(ld.sender)
			ld.recvD = n.domOfEndpoint(ld.receiver)
			ld.crossDom = ld.sendD != ld.recvD
			// ECN marks at switch egress queues only; each direction's
			// stream is drawn solely by the owning switch's domain, so
			// marking stays bit-identical across worker counts.
			if cfg.ECN.Enabled && ld.sender.Kind == topology.SwitchEnd {
				ld.ecnRNG = sim.NewRNG(cfg.Seed, fmt.Sprintf("ecn/%d/%d", i, d))
			}
		}
		// Bind the resident serialization timers once the dirs have
		// their final addresses (the links slice never reallocates).
		ls.dirs[DirAtoB].ser = serTimer{n: n, ld: &ls.dirs[DirAtoB]}
		ls.dirs[DirBtoA].ser = serTimer{n: n, ld: &ls.dirs[DirBtoA]}
	}

	leafOrd, spineOrd, coreOrd := map[topology.SwitchID]int{}, map[topology.SwitchID]int{}, map[topology.SwitchID]int{}
	for i, id := range n.topo.Leaves() {
		leafOrd[id] = i
	}
	for i, id := range n.topo.Spines() {
		spineOrd[id] = i
	}
	for i, id := range n.topo.Cores() {
		coreOrd[id] = i
	}

	for i := range n.switches {
		sd := n.topo.Switch(topology.SwitchID(i))
		ss := &n.switches[i]
		ss.id = sd.ID
		ss.kind = sd.Kind
		ss.pod = sd.Pod
		switch sd.Kind {
		case topology.Leaf:
			ss.ord = leafOrd[sd.ID]
		case topology.Spine:
			ss.ord = spineOrd[sd.ID]
		case topology.Core:
			ss.ord = coreOrd[sd.ID]
		}
		ss.egress = make([]*linkDir, len(sd.Ports))
		ss.occ = make([][numPriorities]int64, len(sd.Ports))
		ss.pausedUp = make([][numPriorities]bool, len(sd.Ports))
		ss.portToHost = make([]topology.HostID, len(sd.Ports))
		for p, pd := range sd.Ports {
			ss.portToHost[p] = -1
			if pd.Peer.Kind == topology.HostEnd {
				ss.portToHost[p] = pd.Peer.Host
			}
			ls := &n.links[pd.Link]
			end := topology.Endpoint{Kind: topology.SwitchEnd, Switch: sd.ID, Port: p}
			if ls.dirs[DirAtoB].sender == end {
				ss.egress[p] = &ls.dirs[DirAtoB]
			} else {
				ss.egress[p] = &ls.dirs[DirBtoA]
			}
		}
		ss.policy = spray.MustNew(cfg.Spray, sim.NewRNG(cfg.Seed, fmt.Sprintf("spray/%d", i)))
		ss.cands = make([]spray.Candidate, 0, len(sd.Ports))
		if n.par {
			ss.d = &n.doms[cfg.Partition.DomainOfSwitch[i]]
		} else {
			ss.d = &n.doms[0]
		}
	}

	for i := range n.hosts {
		hd := n.topo.Host(topology.HostID(i))
		hs := &n.hosts[i]
		hs.id = hd.ID
		ls := &n.links[hd.Link]
		end := topology.Endpoint{Kind: topology.HostEnd, Host: hd.ID}
		if ls.dirs[DirAtoB].sender == end {
			hs.egress = &ls.dirs[DirAtoB]
		} else {
			hs.egress = &ls.dirs[DirBtoA]
		}
		if n.par {
			hs.d = &n.doms[cfg.Partition.DomainOfHost[i]]
		} else {
			hs.d = &n.doms[0]
		}
	}

	n.fib = newFIBTable(n.topo)
	n.recomputeFIBs()
	return n, nil
}

// MustNew is New but panics on error, for statically valid configs.
func MustNew(cfg Config) *Network {
	n, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return n
}

// domOfEndpoint resolves the domain state owning one link endpoint.
func (n *Network) domOfEndpoint(ep topology.Endpoint) *domainState {
	if !n.par {
		return &n.doms[0]
	}
	if ep.Kind == topology.HostEnd {
		return &n.doms[n.cfg.Partition.DomainOfHost[ep.Host]]
	}
	return &n.doms[n.cfg.Partition.DomainOfSwitch[ep.Switch]]
}

// Engine returns the driving event engine (the control engine in
// sharded mode).
func (n *Network) Engine() *sim.Engine { return n.engine }

// Group returns the sharded scheduler, or nil in legacy mode.
func (n *Network) Group() *sim.Group { return n.grp }

// Partition returns the domain decomposition, or nil in legacy mode.
func (n *Network) Partition() *topology.Partition { return n.cfg.Partition }

// EngineOf returns the engine that executes a host's events: the
// host's domain engine in sharded mode, the single engine otherwise.
// Traffic sources (transports, injectors) must schedule a host's work
// here.
func (n *Network) EngineOf(h topology.HostID) *sim.Engine { return n.hosts[h].d.eng }

// EngineOfSwitch returns the engine that executes a switch's events.
func (n *Network) EngineOfSwitch(sw topology.SwitchID) *sim.Engine { return n.switches[sw].d.eng }

// DomainOf returns a host's partition domain (0 in legacy mode).
func (n *Network) DomainOf(h topology.HostID) int { return n.hosts[h].d.dom }

// DomainOfSwitch returns a switch's partition domain (0 in legacy mode).
func (n *Network) DomainOfSwitch(sw topology.SwitchID) int { return n.switches[sw].d.dom }

// Topology returns the wiring the network was built over.
func (n *Network) Topology() *topology.Topology { return n.topo }

// Stats returns a snapshot of the network-wide counters, summed over
// domains. Do not call concurrently with a running group window.
func (n *Network) Stats() Stats {
	s := n.doms[0].stats
	for i := 1; i < len(n.doms); i++ {
		d := &n.doms[i].stats
		s.Sent += d.Sent
		s.SentBytes += d.SentBytes
		s.Delivered += d.Delivered
		s.DeliveredBytes += d.DeliveredBytes
		s.FaultDropped += d.FaultDropped
		s.RouteDropped += d.RouteDropped
		s.RouteDroppedBytes += d.RouteDroppedBytes
		s.AdminDropped += d.AdminDropped
		s.PFCPauses += d.PFCPauses
		s.CEMarked += d.CEMarked
		s.ProbesSent += d.ProbesSent
		s.ProbesLost += d.ProbesLost
	}
	return s
}

// SetReceiver registers the delivery callback for a host.
func (n *Network) SetReceiver(h topology.HostID, r Receiver) { n.hosts[h].recv = r }

// SetDequeueHook registers the NIC wire-out callback for a host.
func (n *Network) SetDequeueHook(h topology.HostID, hook DequeueHook) {
	n.hosts[h].onDequeue = hook
}

// SetIngressHook replaces every ingress observer on a switch with the
// given hook (nil to remove all). Prefer AddIngressHook: independent
// observers (telemetry monitors of several jobs, test probes) must
// compose, and a bare set silently clobbers whoever attached first.
func (n *Network) SetIngressHook(sw topology.SwitchID, hook IngressHook) {
	n.ingressHooks[sw] = n.ingressHooks[sw][:0]
	if hook != nil {
		n.ingressHooks[sw] = append(n.ingressHooks[sw], hook)
	}
}

// AddIngressHook appends an ingress observer to a switch. Hooks run in
// registration order on every packet accepted at the switch's ingress.
func (n *Network) AddIngressHook(sw topology.SwitchID, hook IngressHook) {
	if hook == nil {
		panic("fabric: AddIngressHook(nil)")
	}
	n.ingressHooks[sw] = append(n.ingressHooks[sw], hook)
}

// SprayPolicyName reports the active load-balancing policy.
func (n *Network) SprayPolicyName() string { return n.switches[0].policy.Name() }

func (n *Network) recomputeFIBs() {
	up := func(l topology.LinkID) bool { return n.links[l].adminUp }
	n.fib.recompute(up)
}

// MaxQueueObserver, when non-nil, is called on every egress enqueue
// with the queue's depth after the push (test/diagnostic hook). The
// global trace hooks below are legacy-mode only: in sharded mode they
// would be invoked from several domains at once.
var MaxQueueObserver func(now sim.Time, sender topology.Endpoint, queuedBytes int64)

// TracePacket, when non-nil, observes packet progress (test hook).
var TracePacket func(now sim.Time, what string, at topology.Endpoint, p *Packet)

// TracePause, when non-nil, observes PFC pause/resume decisions (test
// hook).
var TracePause func(now sim.Time, pausedSender topology.Endpoint, prio int, pause bool, occ int64)
