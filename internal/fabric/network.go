package fabric

import (
	"fmt"

	"flowpulse/internal/sim"
	"flowpulse/internal/spray"
	"flowpulse/internal/topology"
)

// Config parameterizes a Network.
type Config struct {
	// Topo is the wiring to simulate. Required.
	Topo *topology.Topology
	// Engine drives the simulation. Required.
	Engine *sim.Engine
	// Spray selects the upstream load-balancing policy. Defaults to
	// spray.LeastLoaded, the paper's APS.
	Spray spray.Kind
	// Seed roots all of the fabric's random streams.
	Seed uint64
	// XoffBytes and XonBytes are the PFC pause/resume thresholds per
	// ingress port and priority. Defaults: 1 MiB / 512 KiB.
	XoffBytes, XonBytes int64
	// SprayMemory is the time constant of the per-port utilization
	// estimator that adaptive policies grade ports by (queued +
	// in-flight + exponentially decayed recent bytes). Zero means the
	// 5 µs default; negative disables the memory term, reducing
	// adaptive spraying to instantaneous queue depth.
	SprayMemory sim.Duration
}

func (c *Config) setDefaults() {
	if c.Spray == "" {
		c.Spray = spray.LeastLoaded
	}
	if c.XoffBytes == 0 {
		c.XoffBytes = 1 << 20
	}
	if c.XonBytes == 0 {
		c.XonBytes = c.XoffBytes / 2
	}
	if c.SprayMemory == 0 {
		c.SprayMemory = 5 * sim.Microsecond
	}
}

// Stats are network-wide packet accounting counters. In an idle
// network, Sent = Delivered + FaultDropped + RouteDropped +
// AdminDropped (packet conservation).
type Stats struct {
	// Sent counts packets injected by hosts.
	Sent uint64
	// SentBytes counts injected bytes.
	SentBytes uint64
	// Delivered counts packets handed to a destination host.
	Delivered uint64
	// DeliveredBytes counts delivered bytes.
	DeliveredBytes uint64
	// FaultDropped counts packets silently dropped by fault models.
	FaultDropped uint64
	// RouteDropped counts packets with no eligible egress port.
	RouteDropped uint64
	// RouteDroppedBytes counts the bytes of route-dropped packets.
	RouteDroppedBytes uint64
	// AdminDropped counts packets caught in flight on a link that went
	// administratively down.
	AdminDropped uint64
	// PFCPauses counts pause events issued.
	PFCPauses uint64
	// ProbesSent and ProbesLost count link-local OAM probes (ProbeLink)
	// and the ones the fault process ate. Probes are not packets: they
	// bypass the forwarding plane and do not enter the conservation
	// identity above.
	ProbesSent, ProbesLost uint64
}

// IngressHook observes every packet accepted at a switch ingress port,
// before forwarding. FlowPulse's leaf monitors attach here — this is
// the programmable-switch counter program of §5.1.
type IngressHook func(now sim.Time, port int, pkt *Packet)

// Receiver accepts packets delivered to a host. The packet is freed
// after the callback returns; receivers must copy retained data.
type Receiver func(now sim.Time, pkt *Packet)

// DequeueHook observes each packet at the instant the host NIC begins
// serializing it onto the wire.
type DequeueHook func(now sim.Time, pkt *Packet)

type hostState struct {
	id        topology.HostID
	egress    *linkDir
	recv      Receiver
	onDequeue DequeueHook
}

type switchState struct {
	id   topology.SwitchID
	kind topology.SwitchKind
	pod  int
	ord  int // ordinal within its kind

	egress     []*linkDir // per port
	occ        [][numPriorities]int64
	pausedUp   [][numPriorities]bool // pause issued to the upstream of this ingress port
	portToHost []topology.HostID     // leaf only, -1 where not a host port

	policy spray.Policy
	cands  []spray.Candidate // scratch
}

// Network is the simulated fabric. It is single-threaded: all access
// must happen from the owning engine's goroutine.
type Network struct {
	cfg    Config
	topo   *topology.Topology
	engine *sim.Engine

	hosts    []hostState
	switches []switchState
	links    []linkState

	fib *fibTable

	ingressHooks [][]IngressHook // per switch, in registration order, empty when absent

	stats Stats

	// fibRecomputes counts administrative transitions (FIB churn).
	fibRecomputes uint64

	tau float64 // spray-memory time constant in picoseconds; <= 0 disables

	freePackets  []*Packet
	freeArrivals []*arrivalTimer
	freePauses   []*pauseTimer
	nextPacketID uint64
}

// allocArrival takes a pooled arrival timer (see arrivalTimer).
func (n *Network) allocArrival() *arrivalTimer {
	if k := len(n.freeArrivals); k > 0 {
		t := n.freeArrivals[k-1]
		n.freeArrivals = n.freeArrivals[:k-1]
		return t
	}
	return &arrivalTimer{n: n}
}

// allocPause takes a pooled PFC pause-frame timer (see pauseTimer).
func (n *Network) allocPause() *pauseTimer {
	if k := len(n.freePauses); k > 0 {
		t := n.freePauses[k-1]
		n.freePauses = n.freePauses[:k-1]
		return t
	}
	return &pauseTimer{n: n}
}

// New builds a Network over the given topology. All links start
// administratively up and fault-free.
func New(cfg Config) (*Network, error) {
	if cfg.Topo == nil || cfg.Engine == nil {
		return nil, fmt.Errorf("fabric: Config.Topo and Config.Engine are required")
	}
	cfg.setDefaults()

	n := &Network{
		cfg:          cfg,
		topo:         cfg.Topo,
		engine:       cfg.Engine,
		hosts:        make([]hostState, len(cfg.Topo.Hosts)),
		switches:     make([]switchState, len(cfg.Topo.Switches)),
		links:        make([]linkState, len(cfg.Topo.Links)),
		ingressHooks: make([][]IngressHook, len(cfg.Topo.Switches)),
		tau:          float64(cfg.SprayMemory),
	}

	for i := range n.links {
		tl := n.topo.Link(topology.LinkID(i))
		ls := &n.links[i]
		ls.topo = tl
		ls.adminUp = true
		ls.dirs[DirAtoB] = linkDir{link: ls, sender: tl.A, receiver: tl.B, rate: tl.RateBPS, prop: tl.Propagation}
		ls.dirs[DirBtoA] = linkDir{link: ls, sender: tl.B, receiver: tl.A, rate: tl.RateBPS, prop: tl.Propagation}
		// Bind the resident serialization timers once the dirs have
		// their final addresses (the links slice never reallocates).
		ls.dirs[DirAtoB].ser = serTimer{n: n, ld: &ls.dirs[DirAtoB]}
		ls.dirs[DirBtoA].ser = serTimer{n: n, ld: &ls.dirs[DirBtoA]}
	}

	leafOrd, spineOrd, coreOrd := map[topology.SwitchID]int{}, map[topology.SwitchID]int{}, map[topology.SwitchID]int{}
	for i, id := range n.topo.Leaves() {
		leafOrd[id] = i
	}
	for i, id := range n.topo.Spines() {
		spineOrd[id] = i
	}
	for i, id := range n.topo.Cores() {
		coreOrd[id] = i
	}

	for i := range n.switches {
		sd := n.topo.Switch(topology.SwitchID(i))
		ss := &n.switches[i]
		ss.id = sd.ID
		ss.kind = sd.Kind
		ss.pod = sd.Pod
		switch sd.Kind {
		case topology.Leaf:
			ss.ord = leafOrd[sd.ID]
		case topology.Spine:
			ss.ord = spineOrd[sd.ID]
		case topology.Core:
			ss.ord = coreOrd[sd.ID]
		}
		ss.egress = make([]*linkDir, len(sd.Ports))
		ss.occ = make([][numPriorities]int64, len(sd.Ports))
		ss.pausedUp = make([][numPriorities]bool, len(sd.Ports))
		ss.portToHost = make([]topology.HostID, len(sd.Ports))
		for p, pd := range sd.Ports {
			ss.portToHost[p] = -1
			if pd.Peer.Kind == topology.HostEnd {
				ss.portToHost[p] = pd.Peer.Host
			}
			ls := &n.links[pd.Link]
			end := topology.Endpoint{Kind: topology.SwitchEnd, Switch: sd.ID, Port: p}
			if ls.dirs[DirAtoB].sender == end {
				ss.egress[p] = &ls.dirs[DirAtoB]
			} else {
				ss.egress[p] = &ls.dirs[DirBtoA]
			}
		}
		ss.policy = spray.MustNew(cfg.Spray, sim.NewRNG(cfg.Seed, fmt.Sprintf("spray/%d", i)))
		ss.cands = make([]spray.Candidate, 0, len(sd.Ports))
	}

	for i := range n.hosts {
		hd := n.topo.Host(topology.HostID(i))
		hs := &n.hosts[i]
		hs.id = hd.ID
		ls := &n.links[hd.Link]
		end := topology.Endpoint{Kind: topology.HostEnd, Host: hd.ID}
		if ls.dirs[DirAtoB].sender == end {
			hs.egress = &ls.dirs[DirAtoB]
		} else {
			hs.egress = &ls.dirs[DirBtoA]
		}
	}

	n.fib = newFIBTable(n.topo)
	n.recomputeFIBs()
	return n, nil
}

// MustNew is New but panics on error, for statically valid configs.
func MustNew(cfg Config) *Network {
	n, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return n
}

// Engine returns the driving event engine.
func (n *Network) Engine() *sim.Engine { return n.engine }

// Topology returns the wiring the network was built over.
func (n *Network) Topology() *topology.Topology { return n.topo }

// Stats returns a snapshot of the network-wide counters.
func (n *Network) Stats() Stats { return n.stats }

// SetReceiver registers the delivery callback for a host.
func (n *Network) SetReceiver(h topology.HostID, r Receiver) { n.hosts[h].recv = r }

// SetDequeueHook registers the NIC wire-out callback for a host.
func (n *Network) SetDequeueHook(h topology.HostID, hook DequeueHook) {
	n.hosts[h].onDequeue = hook
}

// SetIngressHook replaces every ingress observer on a switch with the
// given hook (nil to remove all). Prefer AddIngressHook: independent
// observers (telemetry monitors of several jobs, test probes) must
// compose, and a bare set silently clobbers whoever attached first.
func (n *Network) SetIngressHook(sw topology.SwitchID, hook IngressHook) {
	n.ingressHooks[sw] = n.ingressHooks[sw][:0]
	if hook != nil {
		n.ingressHooks[sw] = append(n.ingressHooks[sw], hook)
	}
}

// AddIngressHook appends an ingress observer to a switch. Hooks run in
// registration order on every packet accepted at the switch's ingress.
func (n *Network) AddIngressHook(sw topology.SwitchID, hook IngressHook) {
	if hook == nil {
		panic("fabric: AddIngressHook(nil)")
	}
	n.ingressHooks[sw] = append(n.ingressHooks[sw], hook)
}

// SprayPolicyName reports the active load-balancing policy.
func (n *Network) SprayPolicyName() string { return n.switches[0].policy.Name() }

func (n *Network) recomputeFIBs() {
	up := func(l topology.LinkID) bool { return n.links[l].adminUp }
	n.fib.recompute(up)
}

// MaxQueueObserver, when non-nil, is called on every egress enqueue
// with the queue's depth after the push (test/diagnostic hook).
var MaxQueueObserver func(now sim.Time, sender topology.Endpoint, queuedBytes int64)

// TracePacket, when non-nil, observes packet progress (test hook).
var TracePacket func(now sim.Time, what string, at topology.Endpoint, p *Packet)

// TracePause, when non-nil, observes PFC pause/resume decisions (test
// hook).
var TracePause func(now sim.Time, pausedSender topology.Endpoint, prio int, pause bool, occ int64)
