package fabric

import (
	"fmt"

	"flowpulse/internal/fault"
	"flowpulse/internal/sim"
	"flowpulse/internal/spray"
	"flowpulse/internal/topology"
)

// SendSpec describes one packet to inject at its source host's NIC.
type SendSpec struct {
	Src, Dst topology.HostID
	Size     int
	Priority Priority
	Kind     PacketKind
	Tag      FlowTag
	Msg      uint64
	Seq      int
	Retx     bool
	// CE seeds Packet.CE: ACKs echo the acknowledged data copy's
	// congestion mark here so the sender's rate limiter learns of
	// queue buildup (data packets are marked by switches, not senders).
	CE bool
	// Stamp seeds Packet.Stamp (ACKs echo the acknowledged copy's
	// wire-out time here; data packets are stamped at NIC dequeue).
	Stamp sim.Time
	// Ctx rides along on the packet for the receiving endpoint
	// (immutable after Send). The sharded transport uses it to carry
	// message metadata across domains without a sender-side map lookup.
	Ctx any
}

// Send injects a packet at the source host's NIC queue. The NIC
// serializes onto the host-leaf link at line rate and honours PFC
// pauses from the leaf, so injection is asynchronous: delivery (or
// loss) is observed via the destination's Receiver and the transport's
// timers.
func (n *Network) Send(spec SendSpec) {
	if spec.Size <= 0 {
		panic(fmt.Sprintf("fabric: non-positive packet size %d", spec.Size))
	}
	hs := &n.hosts[spec.Src]
	p := n.allocPacket(hs.d)
	p.Src, p.Dst = spec.Src, spec.Dst
	p.Size = spec.Size
	p.Priority = spec.Priority
	p.Kind = spec.Kind
	p.Tag = spec.Tag
	p.Msg, p.Seq, p.Retx = spec.Msg, spec.Seq, spec.Retx
	p.CE = spec.CE
	p.Stamp = spec.Stamp
	p.Ctx = spec.Ctx

	hs.d.stats.Sent++
	hs.d.stats.SentBytes += uint64(spec.Size)
	if TracePacket != nil {
		TracePacket(hs.d.eng.Now(), "inject", topology.Endpoint{Kind: topology.HostEnd, Host: spec.Src}, p)
	}

	hs.egress.queues[p.Priority].push(p)
	n.kick(hs.egress)
}

// kick starts the transmitter of a link direction if it is idle and
// has eligible work. Strict priority: High drains before Low; a paused
// priority is skipped (that is PFC).
func (n *Network) kick(ld *linkDir) {
	if ld.busy {
		return
	}
	var p *Packet
	for prio := 0; prio < numPriorities; prio++ {
		if ld.paused[prio] {
			continue
		}
		if q := &ld.queues[prio]; q.len() > 0 {
			p = q.pop()
			break
		}
	}
	if p == nil {
		return
	}

	// The packet has left the sender's buffer: release PFC credit, or
	// tell the owning NIC its frame hit the wire (transports time
	// retransmission from this instant, as NIC hardware does).
	eng := ld.sendD.eng
	if p.inSwitch {
		n.releaseCredit(p)
	} else if ld.sender.Kind == topology.HostEnd {
		if TracePacket != nil {
			TracePacket(eng.Now(), "wireout", ld.sender, p)
		}
		if cb := n.hosts[ld.sender.Host].onDequeue; cb != nil {
			cb(eng.Now(), p)
		}
	}

	ld.busy = true
	ld.sent++
	ld.sentBytes += uint64(p.Size)
	prio := int(p.Priority)
	ld.inflight[prio] = int64(p.Size)
	ld.inflightPrio = prio
	ser := sim.SerializationDelay(p.Size, ld.rate)
	// Zero-alloc scheduling: rearm the direction's resident
	// serialization timer and a pooled arrival timer instead of two
	// fresh closures per hop. The two events are scheduled in the same
	// order as the closures they replace, preserving same-instant
	// tie-breaking and therefore bitwise determinism.
	ld.ser.size = p.Size
	ld.ser.prio = prio
	eng.AfterTimer(ser, &ld.ser)
	at := n.allocArrival(ld.sendD)
	at.ld, at.p = ld, p
	if ld.crossDom {
		// Cross-domain hop: hand the arrival through the group
		// barrier. The landing time is at least prop >= lookahead past
		// now, so the strict post contract holds by construction.
		n.grp.PostTimer(ld.sendD.dom, ld.recvD.dom, eng.Now().Add(ser+ld.prop), at)
	} else {
		eng.AfterTimer(ser+ld.prop, at)
	}
}

// arrive lands a packet at the far end of a link direction, applying
// the direction's silent fault process. A faulted packet vanishes
// without touching any counter a switch OS could see — only FlowPulse's
// volume accounting can notice the deficit.
func (n *Network) arrive(ld *linkDir, p *Packet, now sim.Time) {
	if TracePacket != nil {
		TracePacket(now, "arrive", ld.receiver, p)
	}
	if !ld.link.adminUp {
		ld.recvD.stats.AdminDropped++
		ld.adminDropped++
		ld.adminDroppedBytes += uint64(p.Size)
		n.freePacket(ld.recvD, p)
		return
	}
	if ld.flt != nil && ld.flt.Apply(now, p.Size) == fault.Drop {
		ld.recvD.stats.FaultDropped++
		ld.faultDropped++
		ld.faultDroppedBytes += uint64(p.Size)
		n.freePacket(ld.recvD, p)
		return
	}
	ld.delivered++
	ld.deliveredBytes += uint64(p.Size)

	switch ld.receiver.Kind {
	case topology.HostEnd:
		n.deliver(ld.receiver.Host, p, now)
	case topology.SwitchEnd:
		n.switchReceive(ld.receiver.Switch, ld.receiver.Port, p, now)
	}
}

func (n *Network) deliver(h topology.HostID, p *Packet, now sim.Time) {
	hs := &n.hosts[h]
	hs.d.stats.Delivered++
	hs.d.stats.DeliveredBytes += uint64(p.Size)
	if recv := hs.recv; recv != nil {
		recv(now, p)
	}
	n.freePacket(hs.d, p)
}

// switchReceive runs the switch pipeline: PFC ingress accounting, the
// telemetry hook, the forwarding decision, and egress enqueue.
func (n *Network) switchReceive(sw topology.SwitchID, port int, p *Packet, now sim.Time) {
	ss := &n.switches[sw]

	// PFC ingress accounting: the packet holds buffer credit on its
	// ingress port until it is dequeued for transmission.
	p.ingressSwitch, p.ingressPort, p.inSwitch = sw, port, true
	prio := int(p.Priority)
	ss.occ[port][prio] += int64(p.Size)
	if ss.occ[port][prio] > n.cfg.XoffBytes && !ss.pausedUp[port][prio] {
		ss.pausedUp[port][prio] = true
		n.pauseUpstream(ss, port, prio, true)
	}

	// Local delivery: destination host hangs off this switch. The
	// egress port — and hence the CE decision — is known before the
	// ingress hooks run, so mark first: the monitor is an ingress
	// observer, and the last-hop host-port queue is exactly where
	// incast builds. A mark applied after the hooks would be invisible
	// to the measurement plane, which on real hardware taps the
	// pipeline after the MMU's ECN stage.
	localPort := -1
	dstLeafOrd := n.fib.hostDstLeaf[p.Dst]
	if ss.kind == topology.Leaf && ss.ord == dstLeafOrd {
		localPort = n.topo.Host(p.Dst).LeafPort
		n.markECN(ss.egress[localPort], p)
	}

	for _, hook := range n.ingressHooks[sw] {
		hook(now, port, p)
	}

	if localPort >= 0 {
		eg := ss.egress[localPort]
		eg.queues[prio].push(p)
		n.kick(eg)
		return
	}

	cands := n.fib.candidates(ss, dstLeafOrd)
	if len(cands) == 0 {
		ss.d.stats.RouteDropped++
		ss.d.stats.RouteDroppedBytes += uint64(p.Size)
		n.releaseCredit(p)
		n.freePacket(ss.d, p)
		return
	}

	var egressPort int
	if len(cands) == 1 {
		egressPort = int(cands[0])
	} else {
		ss.cands = ss.cands[:0]
		for _, c := range cands {
			ss.cands = append(ss.cands, spray.Candidate{Port: int(c), QueueBytes: ss.egress[c].load(now, n.tau, prio)})
		}
		pick := ss.policy.Pick(ss.cands, p.FlowKey())
		egressPort = ss.cands[pick].Port
	}

	eg := ss.egress[egressPort]
	n.markECN(eg, p)
	eg.queues[prio].push(p)
	if MaxQueueObserver != nil {
		MaxQueueObserver(now, eg.sender, eg.queuedBytes())
	}
	n.kick(eg)
}

// markECN applies RED-style CE marking at a switch egress enqueue:
// below KMin nothing is marked, above KMax every data packet is,
// between the two the probability ramps linearly up to PMax. The queue
// depth is the packet's own class including the arriving frame, so an
// incast burst sees its own buildup immediately. Disabled networks
// never reach the RNG (the per-direction streams are not even
// allocated), keeping runs byte-identical to pre-ECN builds.
func (n *Network) markECN(ld *linkDir, p *Packet) {
	if !n.cfg.ECN.Enabled || p.Kind != Data {
		return
	}
	depth := ld.queues[p.Priority].byteLen() + int64(p.Size)
	if depth <= n.cfg.ECN.KMinBytes {
		return
	}
	if depth >= n.cfg.ECN.KMaxBytes {
		p.CE = true
	} else {
		frac := float64(depth-n.cfg.ECN.KMinBytes) / float64(n.cfg.ECN.KMaxBytes-n.cfg.ECN.KMinBytes)
		if !ld.ecnRNG.Bernoulli(n.cfg.ECN.PMax * frac) {
			return
		}
		p.CE = true
	}
	ld.sendD.stats.CEMarked++
	ld.ceMarked++
}

// releaseCredit returns a packet's PFC buffer credit to its ingress
// port, resuming the upstream transmitter if occupancy fell below Xon.
func (n *Network) releaseCredit(p *Packet) {
	if !p.inSwitch {
		return
	}
	ss := &n.switches[p.ingressSwitch]
	prio := int(p.Priority)
	ss.occ[p.ingressPort][prio] -= int64(p.Size)
	p.inSwitch = false
	if ss.pausedUp[p.ingressPort][prio] && ss.occ[p.ingressPort][prio] < n.cfg.XonBytes {
		ss.pausedUp[p.ingressPort][prio] = false
		n.pauseUpstream(ss, p.ingressPort, prio, false)
	}
}

// pauseUpstream delivers a PFC pause or resume frame to the
// transmitter feeding the given ingress port. The frame crosses the
// link, so it takes one propagation delay to act.
func (n *Network) pauseUpstream(ss *switchState, port, prio int, pause bool) {
	down := ss.egress[port] // our egress on the same cable
	upstream := &down.link.dirs[0]
	if upstream == down {
		upstream = &down.link.dirs[1]
	}
	if pause {
		ss.d.stats.PFCPauses++
	}
	if TracePause != nil {
		TracePause(ss.d.eng.Now(), upstream.sender, prio, pause, ss.occ[port][prio])
	}
	pt := n.allocPause(ss.d)
	pt.upstream, pt.prio, pt.pause = upstream, prio, pause
	if upstream.sendD != ss.d {
		// The pause frame crosses a domain boundary (the upstream
		// transmitter is another switch); prop >= lookahead makes the
		// strict post legal.
		n.grp.PostTimer(ss.d.dom, upstream.sendD.dom, ss.d.eng.Now().Add(down.prop), pt)
	} else {
		ss.d.eng.AfterTimer(down.prop, pt)
	}
}

// pauseTimer delivers one PFC pause/resume frame after the link's
// propagation delay. Pooled on the Network like arrivalTimer: several
// pause frames can be in flight at once.
type pauseTimer struct {
	n        *Network
	upstream *linkDir
	prio     int
	pause    bool
}

// Fire applies the pause state at the upstream transmitter. It runs on
// the upstream sender's engine, so the timer is returned to that
// domain's pool.
func (t *pauseTimer) Fire(_ sim.Time) {
	n, upstream, prio, pause := t.n, t.upstream, t.prio, t.pause
	t.upstream = nil
	upstream.sendD.freePauses = append(upstream.sendD.freePauses, t)
	upstream.paused[prio] = pause
	if !pause {
		n.kick(upstream)
	}
}
