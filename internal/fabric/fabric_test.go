package fabric

import (
	"testing"
	"testing/quick"

	"flowpulse/internal/fault"
	"flowpulse/internal/sim"
	"flowpulse/internal/spray"
	"flowpulse/internal/topology"
)

func newTestNet(t *testing.T, cfg topology.FatTreeConfig, seed uint64) (*Network, *sim.Engine) {
	t.Helper()
	topo, err := topology.NewFatTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	n, err := New(Config{Topo: topo, Engine: eng, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return n, eng
}

func TestSinglePacketDelivery(t *testing.T) {
	n, eng := newTestNet(t, topology.FatTreeConfig{Leaves: 4, Spines: 2}, 1)
	var got *Packet
	var at sim.Time
	n.SetReceiver(3, func(now sim.Time, p *Packet) {
		cp := *p
		got, at = &cp, now
	})
	n.Send(SendSpec{Src: 0, Dst: 3, Size: 4096, Priority: High, Kind: Data, Msg: 7, Seq: 9})
	eng.Run()
	if got == nil {
		t.Fatal("packet not delivered")
	}
	if got.Src != 0 || got.Dst != 3 || got.Msg != 7 || got.Seq != 9 {
		t.Fatalf("delivered packet fields wrong: %v", got)
	}
	// 4 serializations of 4096B at 400G (81.92ns each) + 4 propagation
	// delays of 200ns = 1127.68ns.
	want := sim.Time(4*81920 + 4*200*1000)
	if at != want {
		t.Fatalf("delivery at %v, want %v", at, want)
	}
	st := n.Stats()
	if st.Sent != 1 || st.Delivered != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestLocalDeliveryStaysUnderLeaf(t *testing.T) {
	n, eng := newTestNet(t, topology.FatTreeConfig{Leaves: 2, Spines: 2, HostsPerLeaf: 2}, 2)
	// Hosts 0 and 1 share leaf 0.
	delivered := false
	n.SetReceiver(1, func(sim.Time, *Packet) { delivered = true })
	// Watch every spine: no packet may appear there.
	for _, spine := range n.Topology().Spines() {
		spine := spine
		n.SetIngressHook(spine, func(_ sim.Time, port int, p *Packet) {
			t.Errorf("local packet reached spine %d port %d: %v", spine, port, p)
		})
	}
	n.Send(SendSpec{Src: 0, Dst: 1, Size: 4096})
	eng.Run()
	if !delivered {
		t.Fatal("local packet not delivered")
	}
}

func sendMany(n *Network, src, dst topology.HostID, count, size int) {
	for i := 0; i < count; i++ {
		n.Send(SendSpec{Src: src, Dst: dst, Size: size, Msg: uint64(i)})
	}
}

// spineArrivals counts, at the destination leaf, packets per uplink
// ingress port (one port per spine when Trunk == 1).
func spineArrivals(n *Network, dstLeaf topology.SwitchID) []int {
	topo := n.Topology()
	hostPorts := len(topo.HostsOf(dstLeaf))
	counts := make([]int, len(topo.Spines()))
	n.SetIngressHook(dstLeaf, func(_ sim.Time, port int, p *Packet) {
		if port >= hostPorts {
			so, _ := topo.SpineOrdinalOfLeafPort(dstLeaf, port)
			counts[so]++
		}
	})
	return counts
}

func TestSprayingSpreadsAcrossAllSpines(t *testing.T) {
	n, eng := newTestNet(t, topology.FatTreeConfig{Leaves: 4, Spines: 8}, 3)
	dstLeaf := n.Topology().LeafOf(3)
	counts := spineArrivals(n, dstLeaf)
	const total = 4000
	sendMany(n, 0, 3, total, 4096)
	eng.Run()
	sum := 0
	for so, c := range counts {
		if c == 0 {
			t.Errorf("spine %d received nothing", so)
		}
		sum += c
	}
	if sum != total {
		t.Fatalf("spine arrivals sum %d, want %d", sum, total)
	}
	// Least-loaded spraying over an otherwise idle fabric balances to
	// within a few packets.
	want := total / 8
	for so, c := range counts {
		if c < want*95/100 || c > want*105/100 {
			t.Errorf("spine %d got %d, want ~%d", so, c, want)
		}
	}
}

func TestFIBRoutesAroundAdminDownLink(t *testing.T) {
	n, eng := newTestNet(t, topology.FatTreeConfig{Leaves: 4, Spines: 4}, 4)
	topo := n.Topology()
	dstLeaf := topo.LeafOf(3)
	// Disconnect spine 1's link to the destination leaf.
	badSpine := topo.Spines()[1]
	link := topo.TrunkLinks(badSpine, dstLeaf)[0]
	n.SetLinkAdmin(link, false)

	counts := spineArrivals(n, dstLeaf)
	const total = 3000
	sendMany(n, 0, 3, total, 4096)
	eng.Run()
	if counts[1] != 0 {
		t.Fatalf("admin-down spine still received %d packets", counts[1])
	}
	for _, so := range []int{0, 2, 3} {
		if c := counts[so]; c < total/3*95/100 {
			t.Errorf("surviving spine %d got %d, want ~%d (d/(s-f) rebalance)", so, c, total/3)
		}
	}
	if st := n.Stats(); st.Delivered != total {
		t.Fatalf("delivered %d of %d despite rerouting", st.Delivered, total)
	}
}

func TestAdminDownSourceSideExcludesSpine(t *testing.T) {
	// A known fault on the SOURCE leaf's uplink must also remove that
	// spine from the spray set (the analytical model's f counts both).
	n, eng := newTestNet(t, topology.FatTreeConfig{Leaves: 4, Spines: 4}, 5)
	topo := n.Topology()
	srcLeaf := topo.LeafOf(0)
	badSpine := topo.Spines()[2]
	n.SetLinkAdmin(topo.TrunkLinks(srcLeaf, badSpine)[0], false)

	counts := spineArrivals(n, topo.LeafOf(3))
	sendMany(n, 0, 3, 2000, 4096)
	eng.Run()
	if counts[2] != 0 {
		t.Fatalf("spine with downed source-side link received %d packets", counts[2])
	}
	if st := n.Stats(); st.Delivered != 2000 {
		t.Fatalf("delivered %d, want 2000", st.Delivered)
	}
}

func TestSilentFaultDropsAtConfiguredRate(t *testing.T) {
	n, eng := newTestNet(t, topology.FatTreeConfig{Leaves: 4, Spines: 4}, 6)
	topo := n.Topology()
	dstLeaf := topo.LeafOf(3)
	badSpine := topo.Spines()[0]
	link := topo.TrunkLinks(badSpine, dstLeaf)[0]
	n.InjectFault(link, n.DirToward(link, dstLeaf), fault.NewBernoulliDrop(0.5, sim.NewRNG(6, "f")))

	const total = 8000
	sendMany(n, 0, 3, total, 4096)
	eng.Run()
	st := n.Stats()
	if st.Delivered+st.FaultDropped != total {
		t.Fatalf("conservation: delivered %d + dropped %d != %d", st.Delivered, st.FaultDropped, total)
	}
	// ~1/4 of traffic crosses the faulty spine; half of that drops.
	wantDrops := total / 8
	if st.FaultDropped < uint64(wantDrops*7/10) || st.FaultDropped > uint64(wantDrops*13/10) {
		t.Fatalf("fault drops = %d, want ~%d", st.FaultDropped, wantDrops)
	}
	ls := n.LinkStats(link, n.DirToward(link, dstLeaf))
	if ls.FaultDropped != st.FaultDropped {
		t.Fatalf("per-link drop counter %d != global %d", ls.FaultDropped, st.FaultDropped)
	}
}

func TestBlackHoleLink(t *testing.T) {
	n, eng := newTestNet(t, topology.FatTreeConfig{Leaves: 4, Spines: 4}, 7)
	topo := n.Topology()
	dstLeaf := topo.LeafOf(3)
	link := topo.TrunkLinks(topo.Spines()[0], dstLeaf)[0]
	n.InjectFault(link, n.DirToward(link, dstLeaf), fault.BlackHole{})

	counts := spineArrivals(n, dstLeaf)
	const total = 4000
	sendMany(n, 0, 3, total, 4096)
	eng.Run()
	if counts[0] != 0 {
		t.Fatalf("blackholed link delivered %d packets", counts[0])
	}
	st := n.Stats()
	// The FIB does NOT know about the silent blackhole, so ~1/4 of
	// packets still die there.
	if st.FaultDropped < total/4*8/10 {
		t.Fatalf("blackhole dropped only %d, expected ~%d", st.FaultDropped, total/4)
	}
}

func TestFaultDirectionality(t *testing.T) {
	n, eng := newTestNet(t, topology.FatTreeConfig{Leaves: 2, Spines: 1}, 8)
	topo := n.Topology()
	link := topo.TrunkLinks(topo.Spines()[0], topo.LeafOf(1))[0]
	// Fault only the direction toward leaf 1: traffic 1->0 (which uses
	// the same cable upstream) must be untouched.
	n.InjectFault(link, n.DirToward(link, topo.LeafOf(1)), fault.BlackHole{})

	got0, got1 := 0, 0
	n.SetReceiver(0, func(sim.Time, *Packet) { got0++ })
	n.SetReceiver(1, func(sim.Time, *Packet) { got1++ })
	sendMany(n, 0, 1, 100, 4096)
	sendMany(n, 1, 0, 100, 4096)
	eng.Run()
	if got1 != 0 {
		t.Errorf("downstream-faulted direction delivered %d", got1)
	}
	if got0 != 100 {
		t.Errorf("reverse direction delivered %d, want 100", got0)
	}
}

func TestUnreachableDestinationCountsRouteDropped(t *testing.T) {
	n, eng := newTestNet(t, topology.FatTreeConfig{Leaves: 2, Spines: 2}, 9)
	topo := n.Topology()
	// Disconnect every spine from leaf 1.
	for _, spine := range topo.Spines() {
		n.SetLinkAdmin(topo.TrunkLinks(spine, topo.LeafOf(1))[0], false)
	}
	sendMany(n, 0, 1, 50, 4096)
	eng.Run()
	st := n.Stats()
	if st.RouteDropped != 50 {
		t.Fatalf("RouteDropped = %d, want 50", st.RouteDropped)
	}
}

func TestHighPriorityOvertakesLow(t *testing.T) {
	n, eng := newTestNet(t, topology.FatTreeConfig{Leaves: 2, Spines: 1}, 10)
	var order []Priority
	n.SetReceiver(1, func(_ sim.Time, p *Packet) { order = append(order, p.Priority) })
	// Queue a burst of low-priority, then one high-priority packet.
	// The NIC is busy with the first low packet, but the high packet
	// must bypass the rest of the low queue.
	for i := 0; i < 10; i++ {
		n.Send(SendSpec{Src: 0, Dst: 1, Size: 4096, Priority: Low, Msg: uint64(i)})
	}
	n.Send(SendSpec{Src: 0, Dst: 1, Size: 4096, Priority: High, Msg: 99})
	eng.Run()
	if len(order) != 11 {
		t.Fatalf("delivered %d, want 11", len(order))
	}
	pos := -1
	for i, pr := range order {
		if pr == High {
			pos = i
			break
		}
	}
	if pos < 0 || pos > 1 {
		t.Fatalf("high-priority packet delivered at position %d, want 0 or 1", pos)
	}
}

func TestPFCLosslessUnderIncast(t *testing.T) {
	// 8 hosts on one leaf all blast a single host on another leaf
	// through one spine: without PFC the leaf egress would overrun, but
	// the fabric is lossless so every packet must arrive.
	topo, err := topology.NewFatTree(topology.FatTreeConfig{Leaves: 2, Spines: 1, HostsPerLeaf: 8})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	n := MustNew(Config{Topo: topo, Engine: eng, Seed: 11, XoffBytes: 64 << 10, XonBytes: 32 << 10})
	dst := topo.HostsOf(topo.Leaves()[1])[0]
	got := 0
	n.SetReceiver(dst, func(sim.Time, *Packet) { got++ })
	const perHost = 200
	for _, src := range topo.HostsOf(topo.Leaves()[0]) {
		sendMany(n, src, dst, perHost, 4096)
	}
	eng.Run()
	if got != 8*perHost {
		t.Fatalf("incast delivered %d, want %d (lossless violated)", got, 8*perHost)
	}
	if n.Stats().PFCPauses == 0 {
		t.Fatal("incast at 8:1 oversubscription triggered no PFC pauses")
	}
}

func TestTrunkedLinksShareLoad(t *testing.T) {
	topo, err := topology.NewFatTree(topology.FatTreeConfig{Leaves: 2, Spines: 2, Trunk: 2})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	n := MustNew(Config{Topo: topo, Engine: eng, Seed: 12})
	dstLeaf := topo.LeafOf(1)
	hostPorts := 1
	portCounts := map[int]int{}
	n.SetIngressHook(dstLeaf, func(_ sim.Time, port int, p *Packet) {
		if port >= hostPorts {
			portCounts[port]++
		}
	})
	const total = 2000
	sendMany(n, 0, 1, total, 4096)
	eng.Run()
	if len(portCounts) != 4 {
		t.Fatalf("used %d uplink ports, want 4 (2 spines x 2 trunks)", len(portCounts))
	}
	for port, c := range portCounts {
		if c < total/4*90/100 {
			t.Errorf("trunk port %d underused: %d", port, c)
		}
	}
}

func TestClos3EndToEnd(t *testing.T) {
	topo, err := topology.NewClos3(topology.Clos3Config{Pods: 2, LeavesPerPod: 2, SpinesPerPod: 2, CoresPerGroup: 2})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	n := MustNew(Config{Topo: topo, Engine: eng, Seed: 13})
	// Host 0 is in pod 0; host 3 in pod 1 (cross-pod, must transit core).
	src, dst := topology.HostID(0), topology.HostID(3)
	got := 0
	n.SetReceiver(dst, func(sim.Time, *Packet) { got++ })
	coreSaw := 0
	for _, core := range topo.Cores() {
		n.SetIngressHook(core, func(sim.Time, int, *Packet) { coreSaw++ })
	}
	sendMany(n, src, dst, 500, 4096)
	eng.Run()
	if got != 500 {
		t.Fatalf("cross-pod delivered %d, want 500", got)
	}
	if coreSaw != 500 {
		t.Fatalf("core layer saw %d packets, want 500", coreSaw)
	}

	// Same-pod traffic must NOT transit the core.
	coreSaw = 0
	got = 0
	n.SetReceiver(1, func(sim.Time, *Packet) { got++ })
	sendMany(n, 0, 1, 300, 4096)
	eng.Run()
	if got != 300 || coreSaw != 0 {
		t.Fatalf("same-pod: delivered %d (want 300), core saw %d (want 0)", got, coreSaw)
	}
}

func TestClos3RoutesAroundCoreFault(t *testing.T) {
	topo, err := topology.NewClos3(topology.Clos3Config{Pods: 2, LeavesPerPod: 2, SpinesPerPod: 2, CoresPerGroup: 2})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	n := MustNew(Config{Topo: topo, Engine: eng, Seed: 14})
	// Down one spine-core link in pod 0.
	spine := topo.SpinesOfPod(0)[0]
	core := topo.Cores()[0]
	n.SetLinkAdmin(topo.TrunkLinks(spine, core)[0], false)

	got := 0
	n.SetReceiver(3, func(sim.Time, *Packet) { got++ })
	sendMany(n, 0, 3, 400, 4096)
	eng.Run()
	if got != 400 {
		t.Fatalf("delivered %d after core-link failure, want 400", got)
	}
}

func TestFlowTagCodecRoundTrip(t *testing.T) {
	f := func(sentinel bool, job uint16, iter uint32) bool {
		tag := FlowTag{Sentinel: sentinel, Job: job, Iter: iter}
		return DecodeFlowTag(EncodeFlowTag(tag)) == tag
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: for random small scenarios with random faults, packet
// conservation holds once the network drains.
func TestPacketConservationProperty(t *testing.T) {
	f := func(seed uint64, nPkts uint8, dropPct uint8) bool {
		topo, err := topology.NewFatTree(topology.FatTreeConfig{Leaves: 3, Spines: 3})
		if err != nil {
			return false
		}
		eng := sim.NewEngine()
		n := MustNew(Config{Topo: topo, Engine: eng, Seed: seed})
		link := topo.TrunkLinks(topo.Spines()[0], topo.LeafOf(2))[0]
		rate := float64(dropPct%100) / 100
		n.InjectFault(link, DirBoth, fault.NewBernoulliDrop(rate, sim.NewRNG(seed, "p")))
		for i := 0; i < int(nPkts); i++ {
			n.Send(SendSpec{Src: 0, Dst: 2, Size: 1000 + int(i), Msg: uint64(i)})
		}
		eng.Run()
		st := n.Stats()
		return st.Sent == st.Delivered+st.FaultDropped+st.RouteDropped+st.AdminDropped
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestIngressHookSeesUplinkPort(t *testing.T) {
	n, eng := newTestNet(t, topology.FatTreeConfig{Leaves: 2, Spines: 2}, 15)
	topo := n.Topology()
	dstLeaf := topo.LeafOf(1)
	sawUplink := false
	n.SetIngressHook(dstLeaf, func(_ sim.Time, port int, p *Packet) {
		if so, _ := topo.SpineOrdinalOfLeafPort(dstLeaf, port); so >= 0 {
			sawUplink = true
			if p.Dst != 1 {
				t.Errorf("hook saw foreign packet %v", p)
			}
		}
	})
	n.Send(SendSpec{Src: 0, Dst: 1, Size: 4096})
	eng.Run()
	if !sawUplink {
		t.Fatal("ingress hook never saw the uplink port")
	}
}

func TestIngressHooksCompose(t *testing.T) {
	n, eng := newTestNet(t, topology.FatTreeConfig{Leaves: 2, Spines: 2}, 15)
	dstLeaf := n.Topology().LeafOf(1)
	var order []int
	n.AddIngressHook(dstLeaf, func(sim.Time, int, *Packet) { order = append(order, 1) })
	n.AddIngressHook(dstLeaf, func(sim.Time, int, *Packet) { order = append(order, 2) })
	n.Send(SendSpec{Src: 0, Dst: 1, Size: 4096})
	eng.Run()
	if len(order) < 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("hooks did not both run in registration order: %v", order)
	}

	// SetIngressHook replaces the whole list.
	calls := 0
	n.SetIngressHook(dstLeaf, func(sim.Time, int, *Packet) { calls++ })
	order = order[:0]
	n.Send(SendSpec{Src: 0, Dst: 1, Size: 4096, Msg: 1})
	eng.Run()
	if len(order) != 0 || calls == 0 {
		t.Fatalf("SetIngressHook did not replace appended hooks: appended=%v replacement=%d", order, calls)
	}
	n.SetIngressHook(dstLeaf, nil)
	calls = 0
	n.Send(SendSpec{Src: 0, Dst: 1, Size: 4096, Msg: 2})
	eng.Run()
	if calls != 0 {
		t.Fatal("SetIngressHook(nil) did not remove hooks")
	}
}

func TestECMPPinsFlowToOnePath(t *testing.T) {
	topo, err := topology.NewFatTree(topology.FatTreeConfig{Leaves: 2, Spines: 8})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	n := MustNew(Config{Topo: topo, Engine: eng, Seed: 16, Spray: spray.ECMP})
	dstLeaf := topo.LeafOf(1)
	counts := spineArrivals(n, dstLeaf)
	// One flow (same Msg) must stick to one spine under ECMP.
	for i := 0; i < 500; i++ {
		n.Send(SendSpec{Src: 0, Dst: 1, Size: 4096, Msg: 42})
	}
	eng.Run()
	used := 0
	for _, c := range counts {
		if c > 0 {
			used++
		}
	}
	if used != 1 {
		t.Fatalf("ECMP flow used %d spines, want 1", used)
	}
}

func TestSendValidatesSize(t *testing.T) {
	n, _ := newTestNet(t, topology.FatTreeConfig{Leaves: 2, Spines: 1}, 17)
	defer func() {
		if recover() == nil {
			t.Fatal("Send accepted non-positive size")
		}
	}()
	n.Send(SendSpec{Src: 0, Dst: 1, Size: 0})
}

func TestDirTowardResolution(t *testing.T) {
	n, _ := newTestNet(t, topology.FatTreeConfig{Leaves: 2, Spines: 1}, 18)
	topo := n.Topology()
	leaf, spine := topo.LeafOf(1), topo.Spines()[0]
	link := topo.TrunkLinks(spine, leaf)[0]
	dirToLeaf := n.DirToward(link, leaf)
	dirToSpine := n.DirToward(link, spine)
	if dirToLeaf == dirToSpine {
		t.Fatal("DirToward returned the same direction for both endpoints")
	}
	hl := topo.Host(0).Link
	if n.DirTowardHost(hl, 0) == n.DirToward(hl, topo.LeafOf(0)) {
		t.Fatal("host link directions not distinct")
	}
}
