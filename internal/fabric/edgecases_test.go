package fabric

import (
	"testing"

	"flowpulse/internal/sim"
	"flowpulse/internal/topology"
)

// Table-driven edge-case fabrics: odd radixes, single-host leaves,
// trunked links, and small Clos configurations. Each case pushes a
// ring of traffic across every host pair boundary and checks full
// delivery plus per-link byte conservation — the same invariant the
// simulation fuzzer's oracle audits.
func TestEdgeCaseFabricsDeliverAndConserve(t *testing.T) {
	build := func(name string) (*topology.Topology, error) {
		switch name {
		case "fat tree odd spines":
			return topology.NewFatTree(topology.FatTreeConfig{Leaves: 5, Spines: 3})
		case "fat tree single spine":
			return topology.NewFatTree(topology.FatTreeConfig{Leaves: 4, Spines: 1})
		case "fat tree trunked":
			return topology.NewFatTree(topology.FatTreeConfig{Leaves: 4, Spines: 2, Trunk: 2})
		case "fat tree odd trunk multi-host":
			return topology.NewFatTree(topology.FatTreeConfig{Leaves: 3, Spines: 2, HostsPerLeaf: 2, Trunk: 3})
		case "clos3 single-leaf pods":
			return topology.NewClos3(topology.Clos3Config{Pods: 3, LeavesPerPod: 1, SpinesPerPod: 2, CoresPerGroup: 2})
		case "clos3 trunked spine links":
			return topology.NewClos3(topology.Clos3Config{Pods: 2, LeavesPerPod: 2, SpinesPerPod: 2, CoresPerGroup: 2, Trunk: 2})
		case "clos3 odd cores":
			return topology.NewClos3(topology.Clos3Config{Pods: 2, LeavesPerPod: 2, SpinesPerPod: 2, CoresPerGroup: 3})
		}
		panic("unknown case " + name)
	}
	cases := []string{
		"fat tree odd spines", "fat tree single spine", "fat tree trunked",
		"fat tree odd trunk multi-host", "clos3 single-leaf pods",
		"clos3 trunked spine links", "clos3 odd cores",
	}
	const perPair = 64
	for _, name := range cases {
		t.Run(name, func(t *testing.T) {
			topo, err := build(name)
			if err != nil {
				t.Fatal(err)
			}
			eng := sim.NewEngine()
			n := MustNew(Config{Topo: topo, Engine: eng, Seed: 7})
			hosts := len(topo.Hosts)
			got := make([]int, hosts)
			for h := 0; h < hosts; h++ {
				h := h
				n.SetReceiver(topology.HostID(h), func(sim.Time, *Packet) { got[h]++ })
			}
			// Ring traffic: host i -> host i+1 crosses every leaf (and,
			// in the Clos cases, pod) boundary.
			for h := 0; h < hosts; h++ {
				for i := 0; i < perPair; i++ {
					n.Send(SendSpec{
						Src: topology.HostID(h), Dst: topology.HostID((h + 1) % hosts),
						Size: 4096, Msg: uint64(i),
					})
				}
			}
			eng.Run()
			for h, c := range got {
				if c != perPair {
					t.Errorf("host %d received %d, want %d", h, c, perPair)
				}
			}
			st := n.Stats()
			if st.Sent != uint64(hosts*perPair) || st.Delivered != st.Sent {
				t.Errorf("stats: %+v", st)
			}
			if bad := n.AuditConservation(); len(bad) != 0 {
				t.Errorf("conservation audit: %v", bad)
			}
		})
	}
}

// Trunked leaf-spine links are a load-balancing surface of their own:
// the sprayer must use every member of every trunk group, not just
// member 0.
func TestTrunkMembersAllCarryTraffic(t *testing.T) {
	topo, err := topology.NewFatTree(topology.FatTreeConfig{Leaves: 2, Spines: 2, Trunk: 3})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	n := MustNew(Config{Topo: topo, Engine: eng, Seed: 9})
	dstLeaf := topo.LeafOf(1)
	hostPorts := len(topo.HostsOf(dstLeaf))
	byTrunk := map[[2]int]int{} // (spine ordinal, trunk index) -> packets
	n.SetIngressHook(dstLeaf, func(_ sim.Time, port int, p *Packet) {
		if port >= hostPorts {
			so, k := topo.SpineOrdinalOfLeafPort(dstLeaf, port)
			byTrunk[[2]int{so, k}]++
		}
	})
	n.SetReceiver(1, func(sim.Time, *Packet) {})
	const total = 1200
	for i := 0; i < total; i++ {
		n.Send(SendSpec{Src: 0, Dst: 1, Size: 4096, Msg: uint64(i)})
	}
	eng.Run()
	sum := 0
	for so := 0; so < 2; so++ {
		for k := 0; k < 3; k++ {
			c := byTrunk[[2]int{so, k}]
			sum += c
			// Least-loaded spraying over 6 equivalent paths balances to
			// within a few percent of total/6.
			if want := total / 6; c < want*90/100 || c > want*110/100 {
				t.Errorf("spine %d trunk %d carried %d, want ~%d", so, k, c, want)
			}
		}
	}
	if sum != total {
		t.Fatalf("trunk arrivals sum %d, want %d", sum, total)
	}
}
