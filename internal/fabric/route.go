package fabric

import (
	"flowpulse/internal/topology"
)

// fibTable holds per-switch forwarding candidates keyed by destination
// leaf. Candidates reflect *administrative* link state only: routing
// converges around known faults (the switch OS removed the link) but
// keeps forwarding onto silently faulty links — the asymmetry at the
// heart of the paper (§1, §4).
type fibTable struct {
	topo *topology.Topology

	// Static adjacency, built once.
	leafUplinks  [][]portPeer          // [leafOrd] -> uplink (port, spine)
	spineDownAdj [][]portPeer          // [spineOrd] -> (port, leaf) downlinks
	spineUpAdj   [][]portPeer          // [spineOrd] -> (port, core) uplinks (3-level)
	coreAdj      [][]portPeer          // [coreOrd] -> (port, spine)
	corePodSpine [][]topology.SwitchID // [coreOrd][pod] -> spine reached
	leafOrdOf    map[topology.SwitchID]int
	spineOrdOf   map[topology.SwitchID]int
	coreOrdOf    map[topology.SwitchID]int
	hostDstLeaf  []int // [host] -> dst leaf ordinal

	// Dynamic candidates, rebuilt by recompute.
	leafUp    [][][]int32 // [leafOrd][dstLeafOrd] -> leaf port indexes
	spineDown [][][]int32 // [spineOrd][dstLeafOrd] -> spine port indexes (same pod)
	spineUp   [][][]int32 // [spineOrd][dstLeafOrd] -> core-facing ports (cross pod)
	coreDown  [][][]int32 // [coreOrd][dstLeafOrd] -> pod-facing ports
}

type portPeer struct {
	port int
	peer topology.SwitchID
	link topology.LinkID
}

func newFIBTable(topo *topology.Topology) *fibTable {
	f := &fibTable{
		topo:        topo,
		leafOrdOf:   map[topology.SwitchID]int{},
		spineOrdOf:  map[topology.SwitchID]int{},
		coreOrdOf:   map[topology.SwitchID]int{},
		hostDstLeaf: make([]int, len(topo.Hosts)),
	}
	for i, id := range topo.Leaves() {
		f.leafOrdOf[id] = i
	}
	for i, id := range topo.Spines() {
		f.spineOrdOf[id] = i
	}
	for i, id := range topo.Cores() {
		f.coreOrdOf[id] = i
	}
	for h := range topo.Hosts {
		f.hostDstLeaf[h] = f.leafOrdOf[topo.Hosts[h].Leaf]
	}

	f.leafUplinks = make([][]portPeer, len(topo.Leaves()))
	for ord, id := range topo.Leaves() {
		for p, pd := range topo.Switch(id).Ports {
			if pd.Peer.Kind == topology.SwitchEnd {
				f.leafUplinks[ord] = append(f.leafUplinks[ord], portPeer{p, pd.Peer.Switch, pd.Link})
			}
		}
	}
	f.spineDownAdj = make([][]portPeer, len(topo.Spines()))
	f.spineUpAdj = make([][]portPeer, len(topo.Spines()))
	for ord, id := range topo.Spines() {
		for p, pd := range topo.Switch(id).Ports {
			peer := pd.Peer.Switch
			switch topo.Switch(peer).Kind {
			case topology.Leaf:
				f.spineDownAdj[ord] = append(f.spineDownAdj[ord], portPeer{p, peer, pd.Link})
			case topology.Core:
				f.spineUpAdj[ord] = append(f.spineUpAdj[ord], portPeer{p, peer, pd.Link})
			}
		}
	}
	pods := 0
	for _, sw := range topo.Switches {
		if sw.Pod+1 > pods {
			pods = sw.Pod + 1
		}
	}
	f.coreAdj = make([][]portPeer, len(topo.Cores()))
	f.corePodSpine = make([][]topology.SwitchID, len(topo.Cores()))
	for ord, id := range topo.Cores() {
		f.corePodSpine[ord] = make([]topology.SwitchID, pods)
		for i := range f.corePodSpine[ord] {
			f.corePodSpine[ord][i] = -1
		}
		for p, pd := range topo.Switch(id).Ports {
			spine := pd.Peer.Switch
			f.coreAdj[ord] = append(f.coreAdj[ord], portPeer{p, spine, pd.Link})
			f.corePodSpine[ord][topo.PodOf(spine)] = spine
		}
	}
	return f
}

// recompute rebuilds every candidate table from the administrative
// link predicate. Fabrics at paper scale have a few thousand entries,
// so a full rebuild on every admin change is cheap and keeps the logic
// obviously convergent.
func (f *fibTable) recompute(up func(topology.LinkID) bool) {
	topo := f.topo
	nLeaf := len(topo.Leaves())

	// anyUpTrunk reports whether a, b share at least one admin-up link.
	anyUpTrunk := func(a, b topology.SwitchID) bool {
		for _, l := range topo.TrunkLinks(a, b) {
			if up(l) {
				return true
			}
		}
		return false
	}

	// spineReaches reports whether a spine can deliver to a leaf using
	// only admin-up links.
	spineReaches := func(spineOrd int, dstLeaf topology.SwitchID) bool {
		spine := topo.Spines()[spineOrd]
		if topo.Levels == 2 || topo.PodOf(spine) == topo.PodOf(dstLeaf) {
			return anyUpTrunk(spine, dstLeaf)
		}
		dstPod := topo.PodOf(dstLeaf)
		for _, pp := range f.spineUpAdj[spineOrd] {
			if !up(pp.link) {
				continue
			}
			dstSpine := f.corePodSpine[f.coreOrdOf[pp.peer]][dstPod]
			if dstSpine < 0 {
				continue
			}
			if anyUpTrunk(pp.peer, dstSpine) && anyUpTrunk(dstSpine, dstLeaf) {
				return true
			}
		}
		return false
	}

	f.leafUp = make([][][]int32, nLeaf)
	for lo := range f.leafUp {
		f.leafUp[lo] = make([][]int32, nLeaf)
		for dl := range f.leafUp[lo] {
			if dl == lo {
				continue
			}
			dstLeaf := topo.Leaves()[dl]
			for _, pp := range f.leafUplinks[lo] {
				if !up(pp.link) {
					continue
				}
				if spineReaches(f.spineOrdOf[pp.peer], dstLeaf) {
					f.leafUp[lo][dl] = append(f.leafUp[lo][dl], int32(pp.port))
				}
			}
		}
	}

	f.spineDown = make([][][]int32, len(topo.Spines()))
	f.spineUp = make([][][]int32, len(topo.Spines()))
	for so := range f.spineDown {
		spine := topo.Spines()[so]
		f.spineDown[so] = make([][]int32, nLeaf)
		f.spineUp[so] = make([][]int32, nLeaf)
		for dl := 0; dl < nLeaf; dl++ {
			dstLeaf := topo.Leaves()[dl]
			if topo.Levels == 2 || topo.PodOf(spine) == topo.PodOf(dstLeaf) {
				for _, pp := range f.spineDownAdj[so] {
					if pp.peer == dstLeaf && up(pp.link) {
						f.spineDown[so][dl] = append(f.spineDown[so][dl], int32(pp.port))
					}
				}
				continue
			}
			dstPod := topo.PodOf(dstLeaf)
			for _, pp := range f.spineUpAdj[so] {
				if !up(pp.link) {
					continue
				}
				dstSpine := f.corePodSpine[f.coreOrdOf[pp.peer]][dstPod]
				if dstSpine < 0 {
					continue
				}
				if anyUpTrunk(pp.peer, dstSpine) && anyUpTrunk(dstSpine, dstLeaf) {
					f.spineUp[so][dl] = append(f.spineUp[so][dl], int32(pp.port))
				}
			}
		}
	}

	f.coreDown = make([][][]int32, len(topo.Cores()))
	for co := range f.coreDown {
		f.coreDown[co] = make([][]int32, nLeaf)
		for dl := 0; dl < nLeaf; dl++ {
			dstLeaf := topo.Leaves()[dl]
			dstPod := topo.PodOf(dstLeaf)
			dstSpine := f.corePodSpine[co][dstPod]
			if dstSpine < 0 {
				continue
			}
			if !anyUpTrunk(dstSpine, dstLeaf) {
				continue
			}
			for _, pp := range f.coreAdj[co] {
				if pp.peer == dstSpine && up(pp.link) {
					f.coreDown[co][dl] = append(f.coreDown[co][dl], int32(pp.port))
				}
			}
		}
	}
}

// candidates returns the eligible egress ports at a switch for a
// destination leaf ordinal, or nil if unreachable.
func (f *fibTable) candidates(ss *switchState, dstLeafOrd int) []int32 {
	switch ss.kind {
	case topology.Leaf:
		return f.leafUp[ss.ord][dstLeafOrd]
	case topology.Spine:
		if c := f.spineDown[ss.ord][dstLeafOrd]; len(c) > 0 {
			return c
		}
		return f.spineUp[ss.ord][dstLeafOrd]
	case topology.Core:
		return f.coreDown[ss.ord][dstLeafOrd]
	}
	return nil
}

// LeafUplinkCandidates exposes the current FIB spray set of a leaf for
// a destination leaf — the analytical predictor reads this to learn f,
// the number of spines excluded by known faults (§5.2).
func (n *Network) LeafUplinkCandidates(leaf, dstLeaf topology.SwitchID) []int {
	lo, dl := n.fib.leafOrdOf[leaf], n.fib.leafOrdOf[dstLeaf]
	ports := n.fib.leafUp[lo][dl]
	out := make([]int, len(ports))
	for i, p := range ports {
		out[i] = int(p)
	}
	return out
}
