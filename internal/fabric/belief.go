package fabric

import (
	"flowpulse/internal/topology"
)

// BeliefFIB is a forwarding table computed from a caller-supplied
// administrative predicate instead of the live fabric's link state.
// The control plane uses one to hold its *believed* routing view: the
// table-build algorithm is the exact code the fabric's own FIB runs,
// so whenever belief matches truth the candidate sets are
// byte-identical to Network.LeafUplinkCandidates — and whenever they
// differ, the divergence is precisely the injected belief error, not
// an artifact of a second implementation.
type BeliefFIB struct {
	fib *fibTable
	// leafUpInt mirrors fib.leafUp as []int, rebuilt on Recompute, so
	// the steady-state read path returns a stable slice without
	// allocating. Callers must not mutate or retain it across a
	// Recompute (the predictor copies before filtering).
	leafUpInt [][][]int
}

// NewBeliefFIB builds the static adjacency for a topology. The dynamic
// candidate tables are empty until the first Recompute.
func NewBeliefFIB(topo *topology.Topology) *BeliefFIB {
	return &BeliefFIB{fib: newFIBTable(topo)}
}

// Recompute rebuilds every candidate table from the believed
// administrative link predicate, exactly as the fabric reconverges on
// a real admin change.
func (b *BeliefFIB) Recompute(up func(topology.LinkID) bool) {
	b.fib.recompute(up)
	if b.leafUpInt == nil {
		b.leafUpInt = make([][][]int, len(b.fib.leafUp))
		for lo := range b.fib.leafUp {
			b.leafUpInt[lo] = make([][]int, len(b.fib.leafUp[lo]))
		}
	}
	for lo := range b.fib.leafUp {
		for dl, ports := range b.fib.leafUp[lo] {
			cached := b.leafUpInt[lo][dl][:0]
			for _, p := range ports {
				cached = append(cached, int(p))
			}
			b.leafUpInt[lo][dl] = cached
		}
	}
}

// LeafUplinkCandidates returns the believed spray set of a leaf for a
// destination leaf — same contract as Network.LeafUplinkCandidates,
// evaluated against the believed view.
func (b *BeliefFIB) LeafUplinkCandidates(leaf, dstLeaf topology.SwitchID) []int {
	lo, dl := b.fib.leafOrdOf[leaf], b.fib.leafOrdOf[dstLeaf]
	return b.leafUpInt[lo][dl]
}
