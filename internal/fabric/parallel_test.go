package fabric

import (
	"hash/fnv"
	"runtime"
	"testing"

	"flowpulse/internal/sim"
	"flowpulse/internal/topology"
)

// runParallelFabric drives raw packet injections over a sharded
// fat-tree and returns an FNV-64a fingerprint of every per-direction
// wire counter plus the merged stats — the full observable surface of
// the fabric layer.
func runParallelFabric(t *testing.T, workers int) uint64 {
	t.Helper()
	topo, err := topology.NewFatTree(topology.FatTreeConfig{Leaves: 4, Spines: 3, HostsPerLeaf: 4})
	if err != nil {
		t.Fatal(err)
	}
	part := topology.NewPartition(topo)
	grp := sim.NewGroup(sim.GroupConfig{Domains: part.NumDomains, Lookahead: part.Lookahead, Workers: workers})
	defer grp.Close()
	net := MustNew(Config{Topo: topo, Group: grp, Partition: part, Seed: 7})

	nHosts := len(topo.Hosts)
	for h := 0; h < nHosts; h++ {
		src := topology.HostID(h)
		eng := net.EngineOf(src)
		for k := 0; k < 20; k++ {
			dst := topology.HostID((h + 5 + k*3) % nHosts)
			if dst == src {
				dst = topology.HostID((h + 1) % nHosts)
			}
			at := sim.Time(h*77+k*991) * sim.Time(sim.Nanosecond)
			size := 1024 + (h+k)%3*512
			prio := High
			if k%4 == 3 {
				prio = Low
			}
			eng.At(at, func(sim.Time) {
				net.Send(SendSpec{Src: src, Dst: dst, Size: size, Priority: prio, Kind: Data})
			})
		}
	}
	final := grp.Run()
	if final == 0 {
		t.Fatal("no simulated time elapsed")
	}
	if bad := net.AuditConservation(); len(bad) != 0 {
		t.Fatalf("workers=%d: conservation violated: %v", workers, bad)
	}

	h := fnv.New64a()
	u64 := func(v uint64) {
		var b [8]byte
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	u64(uint64(final))
	for l := range topo.Links {
		for _, dir := range []Direction{DirAtoB, DirBtoA} {
			s := net.LinkStats(topology.LinkID(l), dir)
			u64(s.Sent)
			u64(s.SentBytes)
			u64(s.Delivered)
			u64(s.DeliveredBytes)
			u64(s.FaultDropped)
			u64(s.AdminDropped)
		}
	}
	st := net.Stats()
	u64(st.Sent)
	u64(st.SentBytes)
	u64(st.Delivered)
	u64(st.DeliveredBytes)
	u64(st.PFCPauses)
	return h.Sum64()
}

func TestParallelFabricDeterministicAcrossWorkers(t *testing.T) {
	want := runParallelFabric(t, 1)
	for _, w := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		if got := runParallelFabric(t, w); got != want {
			t.Fatalf("workers=%d: fingerprint %x, want %x", w, got, want)
		}
	}
}

func TestParallelFabricDomainAssignment(t *testing.T) {
	topo, err := topology.NewFatTree(topology.FatTreeConfig{Leaves: 2, Spines: 2, HostsPerLeaf: 2})
	if err != nil {
		t.Fatal(err)
	}
	part := topology.NewPartition(topo)
	grp := sim.NewGroup(sim.GroupConfig{Domains: part.NumDomains, Lookahead: part.Lookahead, Workers: 1})
	defer grp.Close()
	net := MustNew(Config{Topo: topo, Group: grp, Partition: part})

	if net.Engine() != grp.Control() {
		t.Fatal("network engine is not the control engine")
	}
	for h := range topo.Hosts {
		hid := topology.HostID(h)
		if net.DomainOf(hid) != net.DomainOfSwitch(topo.LeafOf(hid)) {
			t.Fatalf("host %d not in its leaf's domain", h)
		}
		if net.EngineOf(hid) != grp.Engine(net.DomainOf(hid)) {
			t.Fatalf("host %d engine mismatch", h)
		}
	}
}
