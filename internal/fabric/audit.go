package fabric

import (
	"fmt"

	"flowpulse/internal/topology"
)

// AuditConservation checks the fabric's byte- and packet-conservation
// invariants after a run has drained (the engine's event queue is
// empty). It returns one message per violation; an empty slice means
// the fabric conserved every byte.
//
// The checked identities, from the wire up:
//
//   - per link direction: every frame that started serializing landed
//     as exactly one of delivered / fault-dropped / admin-dropped
//     (packets and bytes), the transmitter is idle, and the egress
//     queues are empty;
//   - per NIC: everything a host injected left its NIC queue — the sum
//     of host-egress wire counters equals the injection counter;
//   - per switch ingress port: all PFC buffer credit was returned
//     (occupancy zero on every priority);
//   - network-wide: injected = delivered + fault-dropped +
//     route-dropped + admin-dropped, in packets and in bytes.
//
// This is the flowpulse-check fuzzer's first oracle: any forwarding,
// queueing, PFC, or fault-model change that loses, duplicates, or
// miscounts a byte anywhere in the fabric trips it.
func (n *Network) AuditConservation() []string {
	var bad []string

	var hostSent, hostSentBytes uint64
	var faultDroppedBytes, adminDroppedBytes uint64
	for i := range n.links {
		ls := &n.links[i]
		for d := range ls.dirs {
			ld := &ls.dirs[d]
			landedPkts := ld.delivered + ld.faultDropped + ld.adminDropped
			landedBytes := ld.deliveredBytes + ld.faultDroppedBytes + ld.adminDroppedBytes
			if ld.sent != landedPkts || ld.sentBytes != landedBytes {
				bad = append(bad, fmt.Sprintf(
					"link %d %v->%v: sent %d pkts/%d B, landed %d pkts/%d B (delivered %d, fault-dropped %d, admin-dropped %d)",
					ls.topo.ID, ld.sender, ld.receiver, ld.sent, ld.sentBytes,
					landedPkts, landedBytes, ld.delivered, ld.faultDropped, ld.adminDropped))
			}
			if ld.busy {
				bad = append(bad, fmt.Sprintf("link %d %v->%v: transmitter busy after drain", ls.topo.ID, ld.sender, ld.receiver))
			}
			if q := ld.queuedBytes(); q != 0 {
				bad = append(bad, fmt.Sprintf("link %d %v->%v: %d bytes still queued after drain", ls.topo.ID, ld.sender, ld.receiver, q))
			}
			if ld.sender.Kind == topology.HostEnd {
				hostSent += ld.sent
				hostSentBytes += ld.sentBytes
			}
			faultDroppedBytes += ld.faultDroppedBytes
			adminDroppedBytes += ld.adminDroppedBytes
		}
	}

	stats := n.Stats()
	if hostSent != stats.Sent || hostSentBytes != stats.SentBytes {
		bad = append(bad, fmt.Sprintf(
			"NIC conservation: hosts injected %d pkts/%d B but NIC egress carried %d pkts/%d B",
			stats.Sent, stats.SentBytes, hostSent, hostSentBytes))
	}

	for i := range n.switches {
		ss := &n.switches[i]
		for port := range ss.occ {
			for prio, occ := range ss.occ[port] {
				if occ != 0 {
					bad = append(bad, fmt.Sprintf(
						"switch %d port %d prio %d: %d bytes of PFC credit unreturned", ss.id, port, prio, occ))
				}
			}
		}
	}

	s := stats
	if s.Sent != s.Delivered+s.FaultDropped+s.RouteDropped+s.AdminDropped {
		bad = append(bad, fmt.Sprintf(
			"network packet conservation: sent %d != delivered %d + fault %d + route %d + admin %d",
			s.Sent, s.Delivered, s.FaultDropped, s.RouteDropped, s.AdminDropped))
	}
	if s.SentBytes != s.DeliveredBytes+faultDroppedBytes+s.RouteDroppedBytes+adminDroppedBytes {
		bad = append(bad, fmt.Sprintf(
			"network byte conservation: sent %d B != delivered %d B + fault %d B + route %d B + admin %d B",
			s.SentBytes, s.DeliveredBytes, faultDroppedBytes, s.RouteDroppedBytes, adminDroppedBytes))
	}
	return bad
}
