package fabric

import (
	"testing"

	"flowpulse/internal/sim"
	"flowpulse/internal/topology"
)

// PFC fine-grained behavior: pause must halt the upstream, resume must
// restart it, and the pause must be per priority class.
func TestPFCPauseAndResumeCycle(t *testing.T) {
	// 4:1 incast into one host through a single spine, with tight
	// thresholds so PFC cycles several times.
	topo, err := topology.NewFatTree(topology.FatTreeConfig{Leaves: 2, Spines: 1, HostsPerLeaf: 4})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	n := MustNew(Config{Topo: topo, Engine: eng, Seed: 1, XoffBytes: 32 << 10, XonBytes: 16 << 10})
	dst := topo.HostsOf(topo.Leaves()[1])[0]
	got := 0
	n.SetReceiver(dst, func(sim.Time, *Packet) { got++ })
	const perHost = 300
	for _, src := range topo.HostsOf(topo.Leaves()[0]) {
		for i := 0; i < perHost; i++ {
			n.Send(SendSpec{Src: src, Dst: dst, Size: 4096, Priority: High, Msg: uint64(i)})
		}
	}
	eng.Run()
	if got != 4*perHost {
		t.Fatalf("lossless violated under PFC cycling: %d/%d", got, 4*perHost)
	}
	st := n.Stats()
	if st.PFCPauses < 2 {
		t.Fatalf("expected repeated pause cycles, got %d", st.PFCPauses)
	}
	// Every queue must be fully drained at the end (no stuck pause).
	for i := range n.links {
		for d := 0; d < 2; d++ {
			ld := &n.links[i].dirs[d]
			if ld.queuedBytes() != 0 {
				t.Fatalf("link %d dir %d still holds %d bytes after drain", i, d, ld.queuedBytes())
			}
		}
	}
}

func TestPFCPausesOnlyTheOffendingClass(t *testing.T) {
	// Saturate the Low class into one host; a concurrent High-class
	// flow to the same host must keep flowing while Low is paused.
	topo, err := topology.NewFatTree(topology.FatTreeConfig{Leaves: 2, Spines: 1, HostsPerLeaf: 3})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	n := MustNew(Config{Topo: topo, Engine: eng, Seed: 2, XoffBytes: 16 << 10, XonBytes: 8 << 10})
	hostsA := topo.HostsOf(topo.Leaves()[0])
	dst := topo.HostsOf(topo.Leaves()[1])[0]

	var lowDone, highDone sim.Time
	lowLeft, highLeft := 600, 100
	n.SetReceiver(dst, func(now sim.Time, p *Packet) {
		if p.Priority == Low {
			lowLeft--
			if lowLeft == 0 {
				lowDone = now
			}
		} else {
			highLeft--
			if highLeft == 0 {
				highDone = now
			}
		}
	})
	// Two hosts blast Low traffic; the third sends a modest High flow.
	for i := 0; i < 300; i++ {
		n.Send(SendSpec{Src: hostsA[0], Dst: dst, Size: 4096, Priority: Low, Msg: uint64(i)})
		n.Send(SendSpec{Src: hostsA[1], Dst: dst, Size: 4096, Priority: Low, Msg: uint64(i)})
	}
	for i := 0; i < 100; i++ {
		n.Send(SendSpec{Src: hostsA[2], Dst: dst, Size: 4096, Priority: High, Msg: uint64(i)})
	}
	eng.Run()
	if lowLeft != 0 || highLeft != 0 {
		t.Fatalf("traffic lost: low=%d high=%d remaining", lowLeft, highLeft)
	}
	if highDone >= lowDone {
		t.Fatalf("high class did not bypass the paused low class: high done %v, low done %v", highDone, lowDone)
	}
}

func TestXonBelowXoffHysteresis(t *testing.T) {
	topo, err := topology.NewFatTree(topology.FatTreeConfig{Leaves: 2, Spines: 1, HostsPerLeaf: 2})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	n := MustNew(Config{Topo: topo, Engine: eng, Seed: 3, XoffBytes: 64 << 10})
	if n.cfg.XonBytes != 32<<10 {
		t.Fatalf("default Xon = %d, want Xoff/2", n.cfg.XonBytes)
	}
}
