package fabric

import (
	"testing"

	"flowpulse/internal/sim"
	"flowpulse/internal/topology"
)

// Steady-state packet forwarding must be allocation-free: the packet
// pool, the pooled/resident typed timers, the engine's event pool, and
// the ring-buffer queues together mean that once warm, pushing a
// packet through every hop of the fat tree costs zero heap
// allocations. This is the regression gate for the simulator's hot
// path — GC pressure here throttles every paper experiment.
func TestForwardingSteadyStateAllocsZero(t *testing.T) {
	topo, err := topology.NewFatTree(topology.FatTreeConfig{Leaves: 4, Spines: 2})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	net := MustNew(Config{Topo: topo, Engine: eng, Seed: 1})
	delivered := 0
	net.SetReceiver(topology.HostID(3), func(sim.Time, *Packet) { delivered++ })

	// Warm every pool: packets, arrival timers, engine events, rings.
	msg := uint64(0)
	send := func() {
		msg++
		net.Send(SendSpec{Src: 0, Dst: 3, Size: 4096, Msg: msg})
	}
	for i := 0; i < 64; i++ {
		send()
	}
	eng.Run()

	avg := testing.AllocsPerRun(200, func() {
		send()
		eng.Run()
	})
	if avg != 0 {
		t.Fatalf("steady-state forwarding allocates %.2f per packet, want 0", avg)
	}
	if delivered == 0 {
		t.Fatal("no packets delivered")
	}
}

// TestShardedForwardingSteadyStateAllocsZero is the sharded-engine
// twin of the gate above: once warm, pushing a packet across domains —
// including the cross-domain mailbox handoff and the barrier drain —
// must stay allocation-free per shard. Two details make the accounting
// honest: Workers=1 executes the identical logical schedule inline on
// the calling goroutine, and the traffic is bidirectional (the receiver
// echoes every packet) because packet/timer pools are per-domain —
// capacity allocated at the source is released at the destination, so
// only round-trip traffic (which is what the transport's data+ack
// exchange produces) reaches a pool-stable steady state.
func TestShardedForwardingSteadyStateAllocsZero(t *testing.T) {
	topo, err := topology.NewFatTree(topology.FatTreeConfig{Leaves: 4, Spines: 2})
	if err != nil {
		t.Fatal(err)
	}
	part := topology.NewPartition(topo)
	g := sim.NewGroup(sim.GroupConfig{Domains: part.NumDomains, Lookahead: part.Lookahead, Workers: 1})
	defer g.Close()
	net := MustNew(Config{Topo: topo, Engine: g.Control(), Group: g, Partition: part, Seed: 1})
	delivered := 0
	var echo uint64
	net.SetReceiver(topology.HostID(3), func(_ sim.Time, p *Packet) {
		delivered++
		echo++
		net.Send(SendSpec{Src: 3, Dst: 0, Size: p.Size, Msg: 1<<40 | echo})
	})
	net.SetReceiver(topology.HostID(0), func(sim.Time, *Packet) {})

	// Warm every pool: packets, timers, engine events, rings, mailboxes.
	msg := uint64(0)
	send := func() {
		msg++
		net.Send(SendSpec{Src: 0, Dst: 3, Size: 4096, Msg: msg})
	}
	for i := 0; i < 64; i++ {
		send()
	}
	g.Run()

	avg := testing.AllocsPerRun(200, func() {
		send()
		g.Run()
	})
	if avg != 0 {
		t.Fatalf("sharded steady-state forwarding allocates %.2f per round trip, want 0", avg)
	}
	if delivered == 0 {
		t.Fatal("no packets delivered")
	}
}

// TestECNForwardingAllocsZero: turning on ECN must not cost the hot
// path anything — marking is a bit set on the pooled packet plus an
// integer compare against the queue depth. The knee is pinned below a
// single frame so every hop takes the always-mark branch, the most
// work the CE stage ever does.
func TestECNForwardingAllocsZero(t *testing.T) {
	topo, err := topology.NewFatTree(topology.FatTreeConfig{Leaves: 4, Spines: 2})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	net := MustNew(Config{
		Topo: topo, Engine: eng, Seed: 1,
		ECN: ECNConfig{Enabled: true, KMinBytes: 1, KMaxBytes: 2},
	})
	marked := 0
	net.SetReceiver(topology.HostID(3), func(_ sim.Time, p *Packet) {
		if p.CE {
			marked++
		}
	})

	msg := uint64(0)
	send := func() {
		msg++
		net.Send(SendSpec{Src: 0, Dst: 3, Size: 4096, Msg: msg})
	}
	for i := 0; i < 64; i++ {
		send()
	}
	eng.Run()

	avg := testing.AllocsPerRun(200, func() {
		send()
		eng.Run()
	})
	if avg != 0 {
		t.Fatalf("ECN-enabled forwarding allocates %.2f per packet, want 0", avg)
	}
	if marked == 0 {
		t.Fatal("no packet carried a CE mark despite a sub-frame knee")
	}
}

// A single hop (host NIC onto the wire) must also be allocation-free —
// the finer-grained version of the steady-state gate, pinning the
// kick/serialize/arrive path specifically.
func TestForwardingSingleHopAllocsZero(t *testing.T) {
	topo, err := topology.NewFatTree(topology.FatTreeConfig{Leaves: 4, Spines: 2})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	net := MustNew(Config{Topo: topo, Engine: eng, Seed: 1})

	// Hosts 0 and 1 share leaf 0: the packet takes exactly host->leaf
	// and leaf->host hops with no spray decision.
	net.SetReceiver(topology.HostID(1), func(sim.Time, *Packet) {})
	msg := uint64(0)
	for i := 0; i < 32; i++ {
		msg++
		net.Send(SendSpec{Src: 0, Dst: 1, Size: 4096, Msg: msg})
	}
	eng.Run()

	avg := testing.AllocsPerRun(200, func() {
		msg++
		net.Send(SendSpec{Src: 0, Dst: 1, Size: 4096, Msg: msg})
		eng.Run()
	})
	if avg != 0 {
		t.Fatalf("single-hop forwarding allocates %.2f per packet, want 0", avg)
	}
}
