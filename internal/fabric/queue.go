package fabric

// fifo is a byte-accounted FIFO of packets, implemented as a ring
// buffer so steady-state forwarding does not allocate. Capacity is
// always a power of two so the hot push/pop index wrap is a mask, not
// a modulo (integer division is tens of cycles on the per-packet
// path).
type fifo struct {
	buf   []*Packet
	head  int
	count int
	bytes int64
}

func (q *fifo) len() int       { return q.count }
func (q *fifo) byteLen() int64 { return q.bytes }

func (q *fifo) push(p *Packet) {
	if q.count == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.count)&(len(q.buf)-1)] = p
	q.count++
	q.bytes += int64(p.Size)
}

func (q *fifo) pop() *Packet {
	if q.count == 0 {
		return nil
	}
	p := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.count--
	q.bytes -= int64(p.Size)
	return p
}

func (q *fifo) peek() *Packet {
	if q.count == 0 {
		return nil
	}
	return q.buf[q.head]
}

// grow doubles the buffer (16 minimum), keeping capacity a power of
// two, and unwraps the ring to the front of the new buffer.
func (q *fifo) grow() {
	size := len(q.buf) * 2
	if size == 0 {
		size = 16
	}
	nb := make([]*Packet, size)
	mask := len(q.buf) - 1
	for i := 0; i < q.count; i++ {
		nb[i] = q.buf[(q.head+i)&mask]
	}
	q.buf = nb
	q.head = 0
}
