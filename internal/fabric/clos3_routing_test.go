package fabric

import (
	"testing"
	"testing/quick"

	"flowpulse/internal/sim"
	"flowpulse/internal/topology"
)

// Property: in a 3-level Clos with a few random admin-down links,
// every host pair that the FIB considers reachable actually delivers,
// and pairs are only unreachable when a cut truly exists.
func TestClos3DeliveryUnderRandomAdminFaults(t *testing.T) {
	f := func(seed uint64, faults uint8) bool {
		topo, err := topology.NewClos3(topology.Clos3Config{
			Pods: 3, LeavesPerPod: 2, SpinesPerPod: 2, CoresPerGroup: 2,
		})
		if err != nil {
			return false
		}
		eng := sim.NewEngine()
		n := MustNew(Config{Topo: topo, Engine: eng, Seed: seed})
		rng := sim.NewRNG(seed, "downs")
		// Down up to 3 random switch-switch links.
		for k := 0; k < int(faults%4); k++ {
			l := topology.LinkID(rng.PickN(len(topo.Links)))
			if topo.Link(l).A.Kind == topology.HostEnd || topo.Link(l).B.Kind == topology.HostEnd {
				continue
			}
			n.SetLinkAdmin(l, false)
		}
		// Probe a handful of cross-pod pairs.
		type probe struct{ src, dst topology.HostID }
		var probes []probe
		for i := 0; i < 4; i++ {
			src := topology.HostID(rng.PickN(len(topo.Hosts)))
			dst := topology.HostID(rng.PickN(len(topo.Hosts)))
			if src != dst {
				probes = append(probes, probe{src, dst})
			}
		}
		delivered := map[topology.HostID]int{}
		for _, p := range probes {
			p := p
			n.SetReceiver(p.dst, func(sim.Time, *Packet) { delivered[p.dst]++ })
		}
		sent := map[topology.HostID]int{}
		for _, p := range probes {
			reachable := len(n.LeafUplinkCandidates(topo.LeafOf(p.src), topo.LeafOf(p.dst))) > 0 ||
				topo.LeafOf(p.src) == topo.LeafOf(p.dst)
			for i := 0; i < 16; i++ {
				n.Send(SendSpec{Src: p.src, Dst: p.dst, Size: 4096, Msg: uint64(i)})
			}
			if reachable {
				sent[p.dst] += 16
			}
		}
		eng.Run()
		st := n.Stats()
		// Conservation always.
		if st.Sent != st.Delivered+st.RouteDropped+st.AdminDropped+st.FaultDropped {
			return false
		}
		// FIB-reachable probes must be fully delivered.
		for dst, want := range sent {
			if delivered[dst] < want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
