package fabric

import (
	"testing"

	"flowpulse/internal/sim"
)

// TestProbeLinkRacingReconnect: a probe launched while the link is
// admin-down must still land after the link is reconnected mid-flight —
// the OAM path owns its packet for the full wire delay, and a
// re-admission racing the last probe round neither loses the result
// nor double-counts it. The symmetric race (disconnect while a probe
// is in flight) must not eat the result either: admin state gates the
// data path, not the control path.
func TestProbeLinkRacingReconnect(t *testing.T) {
	n := buildFatTree(t, 4, 2, 1)
	link := n.topo.TrunkLinks(n.topo.Leaves()[0], n.topo.Spines()[1])[0]
	n.DisconnectLink(link)

	var results []bool
	n.ProbeLink(link, DirAtoB, 256, func(_ sim.Time, d bool) { results = append(results, d) })
	// Reconnect before the engine delivers the probe: the in-flight
	// probe must complete exactly once.
	n.ReconnectLink(link)
	n.Engine().Run()
	if len(results) != 1 || !results[0] {
		t.Fatalf("probe racing reconnect: results %v, want [true]", results)
	}

	// The mirror race: probe a live link, disconnect before delivery.
	results = nil
	n.ProbeLink(link, DirBtoA, 256, func(_ sim.Time, d bool) { results = append(results, d) })
	n.DisconnectLink(link)
	n.Engine().Run()
	if len(results) != 1 || !results[0] {
		t.Fatalf("probe racing disconnect: results %v, want [true]", results)
	}

	if st := n.Stats(); st.ProbesSent != 2 || st.ProbesLost != 0 {
		t.Fatalf("probe stats %d sent / %d lost, want 2/0", st.ProbesSent, st.ProbesLost)
	}
}

// TestProbeLinkPayloadValidation: zero and negative payloads are
// programming errors (a zero-byte probe has no serialization delay and
// would report "link fine" without touching the wire), as is the
// ambiguous DirBoth — all three must panic rather than half-work.
func TestProbeLinkPayloadValidation(t *testing.T) {
	n := buildFatTree(t, 4, 2, 1)
	link := n.topo.TrunkLinks(n.topo.Leaves()[0], n.topo.Spines()[0])[0]
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	expectPanic("zero payload", func() { n.ProbeLink(link, DirAtoB, 0, nil) })
	expectPanic("negative payload", func() { n.ProbeLink(link, DirAtoB, -64, nil) })
	expectPanic("DirBoth", func() { n.ProbeLink(link, DirBoth, 256, nil) })
}

// TestProbeLinkOversizedPayload: a jumbo probe still delivers, and its
// wire delay scales with size — the serialization model must not
// overflow or clamp for payloads far beyond the MTU.
func TestProbeLinkOversizedPayload(t *testing.T) {
	n := buildFatTree(t, 4, 2, 1)
	link := n.topo.TrunkLinks(n.topo.Leaves()[0], n.topo.Spines()[0])[0]

	var smallAt, jumboAt sim.Time
	n.ProbeLink(link, DirAtoB, 256, func(now sim.Time, d bool) {
		if d {
			smallAt = now
		}
	})
	n.ProbeLink(link, DirAtoB, 64<<20, func(now sim.Time, d bool) {
		if d {
			jumboAt = now
		}
	})
	n.Engine().Run()
	if smallAt == 0 || jumboAt == 0 {
		t.Fatalf("probe deliveries missing: small at %v, jumbo at %v", smallAt, jumboAt)
	}
	if jumboAt <= smallAt {
		t.Fatalf("jumbo probe (64 MiB) landed at %v, not after the 256 B probe at %v", jumboAt, smallAt)
	}
}
