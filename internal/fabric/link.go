package fabric

import (
	"fmt"
	"math"

	"flowpulse/internal/fault"
	"flowpulse/internal/sim"
	"flowpulse/internal/topology"
)

// Direction selects one or both directions of a bidirectional link.
type Direction uint8

const (
	// DirAtoB is the direction from the link's A endpoint to its B
	// endpoint (topology.Link field order).
	DirAtoB Direction = iota
	// DirBtoA is the reverse direction.
	DirBtoA
	// DirBoth selects both directions.
	DirBoth
)

// serTimer is a linkDir's resident serialization-done callback. A
// direction serializes at most one frame at a time, so one pre-bound
// timer per direction replaces the per-frame closure the transmitter
// used to allocate; kick stamps size/prio before each rearm.
type serTimer struct {
	n    *Network
	ld   *linkDir
	size int
	prio int
}

// Fire completes the frame on the wire and restarts the transmitter.
func (t *serTimer) Fire(now sim.Time) {
	ld := t.ld
	ld.busy = false
	ld.inflight[t.prio] = 0
	ld.addRecent(now, t.size, t.prio, t.n.tau)
	t.n.kick(ld)
}

// arrivalTimer carries one in-flight packet across a link direction's
// propagation delay. Instances are pooled on the Network (a direction
// can have many frames propagating at once, so unlike serTimer they
// cannot be resident per direction).
type arrivalTimer struct {
	n  *Network
	ld *linkDir
	p  *Packet
}

// Fire lands the packet at the far end and returns the timer to the
// receiver domain's pool (it fires on the receiver's engine).
func (t *arrivalTimer) Fire(now sim.Time) {
	n, ld, p := t.n, t.ld, t.p
	t.ld, t.p = nil, nil
	ld.recvD.freeArrivals = append(ld.recvD.freeArrivals, t)
	n.arrive(ld, p, now)
}

// linkDir is one direction of a link: the sender-side transmitter
// (priority queues, serialization, PFC pause state) plus the fault
// process and delivery stats for that direction.
type linkDir struct {
	link     *linkState
	sender   topology.Endpoint
	receiver topology.Endpoint
	rate     int64
	prop     sim.Duration

	// sendD/recvD are the partition domains of the two endpoints (the
	// single shared domain in legacy mode). The sender's domain owns
	// the transmitter state and the sent* counters; the receiver's
	// domain owns the fault process and the delivered*/dropped*
	// counters — disjoint field sets, so the direction needs no lock.
	// crossDom marks directions whose arrival must be posted through
	// the group barrier.
	sendD    *domainState
	recvD    *domainState
	crossDom bool

	flt fault.Model // nil when healthy

	// ecnRNG drives probabilistic CE marking on this direction's egress
	// queue; nil unless Config.ECN is enabled and the sender is a
	// switch. ceMarked counts marks (sender-domain owned, like sent*).
	ecnRNG   *sim.RNG
	ceMarked uint64

	queues [numPriorities]fifo
	busy   bool
	paused [numPriorities]bool

	ser serTimer // resident serialization-done timer

	// Adaptive-routing load estimate: bytes of the frame on the wire
	// plus an exponentially decaying count of recently transmitted
	// bytes. Hardware APS grades ports by utilization, not just
	// instantaneous queue depth; without this memory, back-to-back
	// packets always see empty queues and "least loaded" degenerates
	// to uniform random spraying (see spray package ablation).
	//
	// The estimate is kept per priority class, and a packet's spray
	// decision sees only its own and higher classes. This is what
	// makes §5.1's prioritization actually isolate the measured
	// collective: without class separation, background load that is
	// asymmetric across ports (e.g. because a known fault removes a
	// port from some destinations' spray sets) systematically pushes
	// the collective's packets the other way, breaking the load model.
	inflight     [numPriorities]int64
	inflightPrio int
	recent       [numPriorities]float64
	recentAt     [numPriorities]sim.Time

	// Wire accounting. Every frame that starts serializing increments
	// sent; on landing it increments exactly one of delivered,
	// faultDropped, or adminDropped — the per-direction conservation
	// identity AuditConservation checks after a run drains.
	sent              uint64
	sentBytes         uint64
	delivered         uint64
	deliveredBytes    uint64
	faultDropped      uint64
	faultDroppedBytes uint64
	adminDropped      uint64
	adminDroppedBytes uint64
}

func (ld *linkDir) queuedBytes() int64 {
	var total int64
	for i := range ld.queues {
		total += ld.queues[i].byteLen()
	}
	return total
}

// load returns the spray metric this port shows to a packet of the
// given priority: queued + in-flight + decayed recent bytes of that
// class and every stricter class. tau <= 0 disables the memory term.
func (ld *linkDir) load(now sim.Time, tau float64, prio int) int64 {
	var total int64
	for p := 0; p <= prio; p++ {
		if ld.recent[p] > 0 {
			if tau <= 0 {
				ld.recent[p] = 0
			} else if now > ld.recentAt[p] {
				ld.recent[p] *= decayFactor(float64(now-ld.recentAt[p]), tau)
				ld.recentAt[p] = now
				if ld.recent[p] < 1 {
					ld.recent[p] = 0
				}
			}
		}
		total += ld.queues[p].byteLen() + ld.inflight[p] + int64(ld.recent[p])
	}
	return total
}

func (ld *linkDir) addRecent(now sim.Time, size, prio int, tau float64) {
	if tau <= 0 {
		return
	}
	if ld.recent[prio] > 0 && now > ld.recentAt[prio] {
		ld.recent[prio] *= decayFactor(float64(now-ld.recentAt[prio]), tau)
	}
	ld.recent[prio] += float64(size)
	ld.recentAt[prio] = now
}

// linkState is the dynamic state of one cable.
type linkState struct {
	topo    *topology.Link
	adminUp bool
	dirs    [2]linkDir // index by DirAtoB / DirBtoA
}

// LinkDirStats reports per-direction wire counters, used by tests, the
// simulation-based predictor, and the conservation oracle. Sent counts
// frames that started serializing onto the wire; each lands as exactly
// one of Delivered, FaultDropped, or AdminDropped.
type LinkDirStats struct {
	Sent              uint64
	SentBytes         uint64
	Delivered         uint64
	DeliveredBytes    uint64
	FaultDropped      uint64
	FaultDroppedBytes uint64
	AdminDropped      uint64
	AdminDroppedBytes uint64
	CEMarked          uint64
}

// DirToward resolves the Direction of a link whose receiver is the
// given switch. It panics if the switch is not an endpoint of the
// link.
func (n *Network) DirToward(link topology.LinkID, receiver topology.SwitchID) Direction {
	l := n.topo.Link(link)
	if l.B.Kind == topology.SwitchEnd && l.B.Switch == receiver {
		return DirAtoB
	}
	if l.A.Kind == topology.SwitchEnd && l.A.Switch == receiver {
		return DirBtoA
	}
	panic(fmt.Sprintf("fabric: switch %d not on link %d", receiver, link))
}

// DirTowardHost resolves the Direction of a link whose receiver is the
// given host.
func (n *Network) DirTowardHost(link topology.LinkID, receiver topology.HostID) Direction {
	l := n.topo.Link(link)
	if l.B.Kind == topology.HostEnd && l.B.Host == receiver {
		return DirAtoB
	}
	if l.A.Kind == topology.HostEnd && l.A.Host == receiver {
		return DirBtoA
	}
	panic(fmt.Sprintf("fabric: host %d not on link %d", receiver, link))
}

// InjectFault attaches a silent fault process to the given direction(s)
// of a link. The FIB is deliberately NOT updated: the fault is silent,
// so routing keeps using the link. Passing nil clears the fault.
func (n *Network) InjectFault(link topology.LinkID, dir Direction, m fault.Model) {
	ls := &n.links[link]
	switch dir {
	case DirAtoB:
		ls.dirs[0].flt = m
	case DirBtoA:
		ls.dirs[1].flt = m
	case DirBoth:
		ls.dirs[0].flt = m
		ls.dirs[1].flt = m
	}
}

// ClearFault removes any silent fault from both directions of a link.
func (n *Network) ClearFault(link topology.LinkID) {
	n.InjectFault(link, DirBoth, nil)
}

// SetLinkAdmin marks a link administratively up or down and reconverges
// every FIB, exactly as a switch OS removing a *detected* faulty link
// from routing (§1). Packets already in flight on a downed link are
// dropped and counted as AdminDropped.
func (n *Network) SetLinkAdmin(link topology.LinkID, up bool) {
	if n.links[link].adminUp == up {
		return
	}
	n.links[link].adminUp = up
	n.fibRecomputes++
	n.recomputeFIBs()
}

// DisconnectLink administratively removes a link from routing — the
// quarantine half of the remediation loop. Idempotent.
func (n *Network) DisconnectLink(link topology.LinkID) { n.SetLinkAdmin(link, false) }

// ReconnectLink is the exact inverse of DisconnectLink: the link
// rejoins every spray set and the FIB reconverges to the pre-disconnect
// state (the FIB recomputation is a pure function of the administrative
// link predicate, so a disconnect/reconnect round trip is byte-identical
// — reconnect_test.go pins this). Idempotent.
func (n *Network) ReconnectLink(link topology.LinkID) { n.SetLinkAdmin(link, true) }

// FIBRecomputes counts administrative link transitions that forced a
// full FIB recomputation — the remediation experiments' churn metric.
// The initial convergence at construction is not counted.
func (n *Network) FIBRecomputes() uint64 { return n.fibRecomputes }

// ProbeLink sends one probe frame over a single direction of a link
// and reports, after the frame's serialization and propagation delay,
// whether it survived the direction's fault process. The probe is a
// link-local OAM frame (BFD-style): it bypasses the forwarding plane
// entirely — not routed, not sprayed, never seen by ingress telemetry
// — so probing cannot disturb the temporal symmetry of the measured
// collective. It works on administratively-down links; that is the
// point: quarantined links are probed for re-admission while routing
// ignores them.
//
// The probe consults the same fault process as data frames (advancing
// its RNG stream), so a probabilistic fault is sampled exactly as the
// data path would sample it.
//
// In sharded mode probes run on the control engine and may only target
// administratively-down links: a downed link's fault process is never
// touched by the data path (arrivals drop on the admin check first),
// so control owns it for the duration of the quarantine.
func (n *Network) ProbeLink(link topology.LinkID, dir Direction, size int, onResult func(now sim.Time, delivered bool)) {
	if dir == DirBoth {
		panic("fabric: ProbeLink needs a single direction")
	}
	if size <= 0 {
		panic(fmt.Sprintf("fabric: non-positive probe size %d", size))
	}
	ld := &n.links[link].dirs[dir]
	n.doms[0].stats.ProbesSent++
	delay := sim.SerializationDelay(size, ld.rate) + ld.prop
	n.engine.After(delay, func(now sim.Time) {
		delivered := ld.flt == nil || ld.flt.Apply(now, size) == fault.Deliver
		if !delivered {
			n.doms[0].stats.ProbesLost++
		}
		if onResult != nil {
			onResult(now, delivered)
		}
	})
}

// LinkAdminUp reports the administrative state of a link.
func (n *Network) LinkAdminUp(link topology.LinkID) bool { return n.links[link].adminUp }

// LinkStats returns delivery counters for one direction of a link.
func (n *Network) LinkStats(link topology.LinkID, dir Direction) LinkDirStats {
	if dir == DirBoth {
		panic("fabric: LinkStats needs a single direction")
	}
	ld := &n.links[link].dirs[dir]
	return LinkDirStats{
		Sent: ld.sent, SentBytes: ld.sentBytes,
		Delivered: ld.delivered, DeliveredBytes: ld.deliveredBytes,
		FaultDropped: ld.faultDropped, FaultDroppedBytes: ld.faultDroppedBytes,
		AdminDropped: ld.adminDropped, AdminDroppedBytes: ld.adminDroppedBytes,
		CEMarked:     ld.ceMarked,
	}
}

// decayFactor computes exp(-dt/tau) for the load estimator.
func decayFactor(dt, tau float64) float64 { return math.Exp(-dt / tau) }
