package fabric

import (
	"testing"
	"testing/quick"
)

func TestFifoBasics(t *testing.T) {
	var q fifo
	if q.len() != 0 || q.byteLen() != 0 || q.pop() != nil || q.peek() != nil {
		t.Fatal("empty fifo misbehaves")
	}
	p1 := &Packet{ID: 1, Size: 100}
	p2 := &Packet{ID: 2, Size: 200}
	q.push(p1)
	q.push(p2)
	if q.len() != 2 || q.byteLen() != 300 {
		t.Fatalf("len=%d bytes=%d", q.len(), q.byteLen())
	}
	if q.peek() != p1 {
		t.Fatal("peek is not FIFO head")
	}
	if q.pop() != p1 || q.pop() != p2 || q.pop() != nil {
		t.Fatal("pop order wrong")
	}
	if q.byteLen() != 0 {
		t.Fatal("bytes not drained")
	}
}

func TestFifoGrowPreservesOrder(t *testing.T) {
	var q fifo
	// Interleave pushes and pops so head wraps before growth.
	for i := 0; i < 10; i++ {
		q.push(&Packet{ID: uint64(i), Size: 1})
	}
	for i := 0; i < 7; i++ {
		q.pop()
	}
	for i := 10; i < 64; i++ {
		q.push(&Packet{ID: uint64(i), Size: 1})
	}
	want := uint64(7)
	for q.len() > 0 {
		got := q.pop().ID
		if got != want {
			t.Fatalf("pop %d, want %d", got, want)
		}
		want++
	}
}

// The ring's capacity must stay a power of two at every size so the
// push/pop index wrap can be a mask instead of a modulo; the head must
// survive growth while wrapped around the end of the buffer.
func TestFifoPowerOfTwoGrowth(t *testing.T) {
	var q fifo
	for i := 0; i < 300; i++ {
		q.push(&Packet{ID: uint64(i), Size: 1})
		if c := len(q.buf); c&(c-1) != 0 {
			t.Fatalf("capacity %d is not a power of two", c)
		}
	}
	// Wrap the head deep into the buffer, then force another growth
	// cycle while wrapped.
	for i := 0; i < 250; i++ {
		q.pop()
	}
	for i := 300; i < 1000; i++ {
		q.push(&Packet{ID: uint64(i), Size: 1})
		if c := len(q.buf); c&(c-1) != 0 {
			t.Fatalf("capacity %d is not a power of two after wrap", c)
		}
	}
	want := uint64(250)
	for q.len() > 0 {
		if got := q.pop().ID; got != want {
			t.Fatalf("pop %d, want %d", got, want)
		}
		want++
	}
	if want != 1000 {
		t.Fatalf("drained %d packets, want 1000", want)
	}
}

// Property: any interleaving of pushes and pops is FIFO and
// byte-conserving.
func TestFifoProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		var q fifo
		next, expect := uint64(0), uint64(0)
		var bytes int64
		for _, op := range ops {
			if op%3 == 0 && q.len() > 0 {
				p := q.pop()
				if p.ID != expect {
					return false
				}
				expect++
				bytes -= int64(p.Size)
			} else {
				size := int(op)%512 + 1
				q.push(&Packet{ID: next, Size: size})
				next++
				bytes += int64(size)
			}
			if q.byteLen() != bytes {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPerPriorityLoadIsolation(t *testing.T) {
	// High-priority spray decisions must not see Low-priority bytes —
	// the mechanism that makes §5.1 prioritization isolate the
	// measured collective.
	ld := &linkDir{}
	ld.queues[int(Low)].push(&Packet{Size: 1 << 20, Priority: Low})
	tau := float64(5000000) // 5 µs in ps
	if got := ld.load(0, tau, int(High)); got != 0 {
		t.Fatalf("High-class load sees Low bytes: %d", got)
	}
	if got := ld.load(0, tau, int(Low)); got != 1<<20 {
		t.Fatalf("Low-class load = %d, want its own bytes", got)
	}
	// Ctrl bytes are visible to every class.
	ld.queues[int(Ctrl)].push(&Packet{Size: 64, Priority: Ctrl})
	if got := ld.load(0, tau, int(High)); got != 64 {
		t.Fatalf("High-class load = %d, want 64 (Ctrl visible)", got)
	}
}

func TestLoadRecentDecays(t *testing.T) {
	ld := &linkDir{}
	tau := float64(5 * 1000 * 1000) // 5 µs
	ld.addRecent(0, 10000, int(High), tau)
	early := ld.load(1000, tau, int(High))
	late := ld.load(50*1000*1000, tau, int(High)) // 50 µs later
	if early < 9000 {
		t.Fatalf("recent bytes decayed too fast: %d", early)
	}
	if late != 0 {
		t.Fatalf("recent bytes never decayed: %d", late)
	}
	// tau <= 0 disables the memory term entirely.
	ld2 := &linkDir{}
	ld2.addRecent(0, 10000, int(High), -1)
	if got := ld2.load(1, -1, int(High)); got != 0 {
		t.Fatalf("disabled memory still contributes: %d", got)
	}
}

func TestPacketPoolRecycles(t *testing.T) {
	n := &Network{doms: make([]domainState, 1)}
	d := &n.doms[0]
	p1 := n.allocPacket(d)
	id1 := p1.ID
	p1.Size = 999
	n.freePacket(d, p1)
	p2 := n.allocPacket(d)
	if p2 != p1 {
		t.Fatal("pool did not recycle")
	}
	if p2.Size != 0 {
		t.Fatal("recycled packet not zeroed")
	}
	if p2.ID == id1 {
		t.Fatal("recycled packet kept its old ID")
	}
}
