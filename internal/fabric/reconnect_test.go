package fabric

import (
	"reflect"
	"testing"

	"flowpulse/internal/fault"
	"flowpulse/internal/sim"
	"flowpulse/internal/topology"
)

// fibSnapshot deep-copies every dynamic candidate table plus the
// public spray-set view, so a disconnect/reconnect round trip can be
// compared byte-for-byte.
type fibSnapshot struct {
	leafUp, spineDown, spineUp, coreDown [][][]int32
	spraySets                            map[[2]topology.SwitchID][]int
	recomputes                           uint64
}

func snapshotFIB(n *Network) fibSnapshot {
	clone := func(t [][][]int32) [][][]int32 {
		out := make([][][]int32, len(t))
		for i := range t {
			out[i] = make([][]int32, len(t[i]))
			for j := range t[i] {
				out[i][j] = append([]int32(nil), t[i][j]...)
			}
		}
		return out
	}
	s := fibSnapshot{
		leafUp:    clone(n.fib.leafUp),
		spineDown: clone(n.fib.spineDown),
		spineUp:   clone(n.fib.spineUp),
		coreDown:  clone(n.fib.coreDown),
		spraySets: map[[2]topology.SwitchID][]int{},
	}
	for _, src := range n.topo.Leaves() {
		for _, dst := range n.topo.Leaves() {
			if src == dst {
				continue
			}
			s.spraySets[[2]topology.SwitchID{src, dst}] = n.LeafUplinkCandidates(src, dst)
		}
	}
	return s
}

func buildFatTree(t *testing.T, leaves, spines, trunk int) *Network {
	t.Helper()
	topo, err := topology.NewFatTree(topology.FatTreeConfig{
		Leaves: leaves, Spines: spines, HostsPerLeaf: 1, Trunk: trunk,
	})
	if err != nil {
		t.Fatal(err)
	}
	return MustNew(Config{Topo: topo, Engine: sim.NewEngine(), Seed: 9})
}

// TestReconnectRoundTrip proves ReconnectLink is the exact inverse of
// DisconnectLink: after the round trip the FIB candidate tables and
// every leaf's spray sets are byte-identical to the pre-disconnect
// state, and the disconnect really did change them in between.
func TestReconnectRoundTrip(t *testing.T) {
	for _, tc := range []struct{ leaves, spines, trunk int }{
		{8, 4, 1},
		{8, 4, 2}, // trunk groups: partial disconnect leaves siblings up
	} {
		n := buildFatTree(t, tc.leaves, tc.spines, tc.trunk)
		link := n.topo.TrunkLinks(n.topo.Leaves()[3], n.topo.Spines()[1])[0]

		before := snapshotFIB(n)

		n.DisconnectLink(link)
		if n.LinkAdminUp(link) {
			t.Fatal("link still admin-up after DisconnectLink")
		}
		during := snapshotFIB(n)
		if reflect.DeepEqual(before.leafUp, during.leafUp) {
			t.Fatal("disconnect did not change the leaf FIB")
		}

		n.ReconnectLink(link)
		if !n.LinkAdminUp(link) {
			t.Fatal("link not admin-up after ReconnectLink")
		}
		after := snapshotFIB(n)

		if !reflect.DeepEqual(before.leafUp, after.leafUp) ||
			!reflect.DeepEqual(before.spineDown, after.spineDown) ||
			!reflect.DeepEqual(before.spineUp, after.spineUp) ||
			!reflect.DeepEqual(before.coreDown, after.coreDown) {
			t.Fatalf("FIB tables differ after disconnect/reconnect round trip (%dx%d trunk %d)",
				tc.leaves, tc.spines, tc.trunk)
		}
		if !reflect.DeepEqual(before.spraySets, after.spraySets) {
			t.Fatalf("spray sets differ after round trip (%dx%d trunk %d)",
				tc.leaves, tc.spines, tc.trunk)
		}
	}
}

// TestFIBRecomputeCounter checks churn accounting: construction is not
// counted, redundant transitions are not counted, real transitions are.
func TestFIBRecomputeCounter(t *testing.T) {
	n := buildFatTree(t, 4, 2, 1)
	if got := n.FIBRecomputes(); got != 0 {
		t.Fatalf("FIBRecomputes after construction = %d, want 0", got)
	}
	link := n.topo.TrunkLinks(n.topo.Leaves()[0], n.topo.Spines()[0])[0]
	n.DisconnectLink(link)
	n.DisconnectLink(link) // idempotent: no extra churn
	n.ReconnectLink(link)
	n.ReconnectLink(link)
	if got := n.FIBRecomputes(); got != 2 {
		t.Fatalf("FIBRecomputes = %d, want 2", got)
	}
}

// TestProbeLink checks the OAM probe path: probes traverse admin-down
// links, consult the fault process, and report asynchronously after
// the wire delay.
func TestProbeLink(t *testing.T) {
	n := buildFatTree(t, 4, 2, 1)
	link := n.topo.TrunkLinks(n.topo.Leaves()[1], n.topo.Spines()[1])[0]
	n.DisconnectLink(link)

	var got []bool
	var at sim.Time
	n.ProbeLink(link, DirAtoB, 256, func(now sim.Time, delivered bool) {
		got = append(got, delivered)
		at = now
	})
	if len(got) != 0 {
		t.Fatal("probe result delivered synchronously")
	}
	n.Engine().Run()
	if len(got) != 1 || !got[0] {
		t.Fatalf("healthy admin-down link: probe results %v, want [true]", got)
	}
	if at == 0 {
		t.Fatal("probe result carries no timestamp")
	}

	// A black-holed direction eats every probe; the reverse direction
	// stays clean.
	n.InjectFault(link, DirAtoB, fault.BlackHole{})
	okA, okB := false, false
	n.ProbeLink(link, DirAtoB, 256, func(_ sim.Time, d bool) { okA = d })
	n.ProbeLink(link, DirBtoA, 256, func(_ sim.Time, d bool) { okB = d })
	n.Engine().Run()
	if okA || !okB {
		t.Fatalf("faulted probe results: AtoB delivered=%v (want false), BtoA delivered=%v (want true)", okA, okB)
	}

	st := n.Stats()
	if st.ProbesSent != 3 || st.ProbesLost != 1 {
		t.Fatalf("probe stats %d sent / %d lost, want 3/1", st.ProbesSent, st.ProbesLost)
	}
}
