package fabric_test

import (
	"strings"
	"testing"

	"flowpulse/internal/fabric"
	"flowpulse/internal/fault"
	"flowpulse/internal/sim"
	"flowpulse/internal/topology"
)

// runAuditWorkload drives a small all-pairs workload through an 4x2
// fat tree, optionally with a fault and an admin-down mid-run, then
// drains and audits.
func runAuditWorkload(t *testing.T, mutate func(net *fabric.Network, eng *sim.Engine)) *fabric.Network {
	t.Helper()
	topo, err := topology.NewFatTree(topology.FatTreeConfig{Leaves: 4, Spines: 2, HostsPerLeaf: 2, LinkRateBPS: 100e9})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	net := fabric.MustNew(fabric.Config{Topo: topo, Engine: eng, Seed: 7})

	hosts := len(topo.Hosts)
	for src := 0; src < hosts; src++ {
		for dst := 0; dst < hosts; dst++ {
			if src == dst {
				continue
			}
			spec := fabric.SendSpec{Src: topology.HostID(src), Dst: topology.HostID(dst), Size: 4096}
			off := sim.Duration(src*hosts+dst) * sim.Microsecond
			eng.After(off, func(sim.Time) { net.Send(spec) })
		}
	}
	if mutate != nil {
		mutate(net, eng)
	}
	eng.Run()
	return net
}

func TestAuditConservationCleanRun(t *testing.T) {
	net := runAuditWorkload(t, nil)
	if bad := net.AuditConservation(); len(bad) != 0 {
		t.Fatalf("clean run violated conservation:\n%s", strings.Join(bad, "\n"))
	}
	s := net.Stats()
	if s.Sent == 0 || s.Delivered != s.Sent {
		t.Fatalf("clean run should deliver everything: %+v", s)
	}
}

func TestAuditConservationWithFaultsAndAdminDown(t *testing.T) {
	net := runAuditWorkload(t, func(net *fabric.Network, eng *sim.Engine) {
		// A lossy uplink from the start, and a different link yanked
		// admin-down mid-run so in-flight frames admin-drop.
		topo := net.Topology()
		leaf0, spines := topo.Leaves()[0], topo.Spines()
		lossy := topo.TrunkLinks(leaf0, spines[0])[0]
		yanked := topo.TrunkLinks(leaf0, spines[1])[0]
		net.InjectFault(lossy, fabric.DirBoth, fault.NewBernoulliDrop(0.5, sim.NewRNG(3, "audit/drop")))
		eng.After(20*sim.Microsecond, func(sim.Time) {
			net.SetLinkAdmin(yanked, false)
		})
	})
	if bad := net.AuditConservation(); len(bad) != 0 {
		t.Fatalf("faulty run violated conservation:\n%s", strings.Join(bad, "\n"))
	}
	s := net.Stats()
	if s.FaultDropped == 0 {
		t.Fatal("expected some fault drops")
	}
	if s.Delivered+s.FaultDropped+s.RouteDropped+s.AdminDropped != s.Sent {
		t.Fatalf("packet identity broken: %+v", s)
	}
}
